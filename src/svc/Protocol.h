//===- svc/Protocol.h - cmmexd wire protocol --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary request/response protocol of the cmmexd execution service
/// (docs/SERVICE.md). Everything travels in self-delimiting frames over a
/// byte stream (Unix or TCP socket), encoded with the same little-endian
/// primitives as the artifact container (support/ByteIO.h) and checksummed
/// the same way (engine/ArtifactStore.cpp):
///
///   "cmmx"    4-byte magic
///   u32       protocol version (ProtocolVersion)
///   u8        frame type (MsgType)
///   u64       payload length in bytes
///   payload   type-specific fields, little-endian
///   u64       FNV-1a 64 checksum of the payload bytes
///
/// The read side is strict and loud: a bad magic, stale version, oversized
/// length prefix, truncated payload, or checksum mismatch is a protocol
/// violation — the server answers with one Error frame (when it still
/// trusts the stream enough to write) and closes the connection; it never
/// guesses at resynchronization. tests/ServiceTest.cpp pins each rejection.
///
/// Requests are multiplexed: every request payload begins with a
/// client-chosen u64 request id, echoed in the response, so a client may
/// pipeline any number of requests on one connection and the server may
/// answer out of order.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SVC_PROTOCOL_H
#define CMM_SVC_PROTOCOL_H

#include "engine/Engine.h"
#include "sem/Executor.h"
#include "support/ByteIO.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cmm::svc {

inline constexpr char FrameMagic[4] = {'c', 'm', 'm', 'x'};
inline constexpr uint32_t ProtocolVersion = 1;
/// Frame header bytes before the payload: magic + version + type + length.
inline constexpr size_t FrameHeaderSize = 4 + 4 + 1 + 8;
/// Trailing checksum bytes.
inline constexpr size_t FrameTrailerSize = 8;
/// Hard ceiling a frame receiver enforces before allocating anything; a
/// length prefix above the configured limit (ServerOptions::MaxFramePayload
/// <= this) is refused without reading the payload.
inline constexpr uint64_t AbsoluteMaxFramePayload = uint64_t(1) << 30;

/// FNV-1a 64 over \p Size bytes — the frame checksum (identical constants
/// to the artifact container's).
uint64_t fnv64(const uint8_t *Data, size_t Size);

/// Frame types. Requests are < 128, responses >= 128.
enum class MsgType : uint8_t {
  // Requests.
  ReqPing = 1,
  ReqCompile = 2,  ///< intern a program in the artifact cache
  ReqRun = 3,      ///< run a job (optionally parking a session at a yield)
  ReqResume = 4,   ///< continue a parked session (one Table 1 operation)
  ReqStats = 5,    ///< live MetricsRegistry snapshot
  ReqClose = 6,    ///< discard a parked session
  ReqShutdown = 7, ///< drain in-flight jobs, ack, stop accepting
  // Responses.
  RespPong = 128,
  RespCompiled = 129,
  RespResult = 130, ///< answer to ReqRun / ReqResume
  RespStats = 131,
  RespClosed = 132,
  RespShutdown = 133,
  RespError = 134,
};

/// Error codes carried by RespError.
enum class ErrCode : uint8_t {
  BadFrame = 1,      ///< malformed frame: magic/length/checksum/payload
  BadVersion = 2,    ///< stale or future protocol version
  BadRequest = 3,    ///< well-formed frame, invalid request semantics
  QuotaExceeded = 4, ///< per-tenant quota refused the request
  NoSuchSession = 5, ///< unknown or already-closed session id
  SessionBusy = 6,   ///< session is being driven by another request
  ShuttingDown = 7,  ///< server is draining; no new work accepted
  Internal = 8,
};

std::string_view errCodeName(ErrCode C);

/// How a ReqResume continues a parked session (JobSession's operations).
enum class ResumeOp : uint8_t {
  Return = 0,    ///< rtResume: bundle return \p Index
  Unwind = 1,    ///< rtResume: `also unwinds to` \p Index
  Cut = 2,       ///< rtResume: cut to \p ContValue
  UnwindTop = 3, ///< rtUnwindTop(Index) — stack walk, stays suspended
  Dispatch = 4,  ///< service the yield with the server-side dispatcher
  Continue = 5,  ///< no resume: more budget for a Running session
};

//===----------------------------------------------------------------------===//
// Payload structs
//===----------------------------------------------------------------------===//

/// ReqCompile payload.
struct CompileRequestMsg {
  uint64_t ReqId = 0;
  std::string Tenant;
  std::vector<std::string> Sources;
  bool Optimize = false;
};

/// ReqRun payload. Budgets of 0 (or ~0 fuel) mean "tenant quota default".
struct RunRequestMsg {
  uint64_t ReqId = 0;
  std::string Tenant;
  std::vector<std::string> Sources;
  bool Optimize = false;
  uint8_t Backend = 0; ///< engine::Backend
  std::string Entry = "main";
  std::vector<Value> Args;
  uint8_t Dispatcher = 0; ///< engine::DispatcherKind (server-side)
  uint64_t MaxSteps = ~uint64_t(0);
  double DeadlineMillis = 0;
  uint64_t MaxMemoryBytes = 0;
  /// Park the executor in a session when the job suspends un-serviced
  /// (resume-over-the-wire); without it a suspension is a final status.
  bool Park = false;
  /// Return the per-job profile JSON in the response (non-parked runs).
  bool WantProfile = false;
};

/// ReqResume payload.
struct ResumeRequestMsg {
  uint64_t ReqId = 0;
  std::string Tenant;
  uint64_t SessionId = 0;
  ResumeOp Op = ResumeOp::Return;
  uint32_t Index = 0;
  Value ContValue;           ///< for Op == Cut
  std::vector<Value> Params; ///< rtResume parameters
  uint8_t Dispatcher = 0;    ///< for Op == Dispatch (engine::DispatcherKind)
  uint64_t MaxSteps = ~uint64_t(0);
  double DeadlineMillis = 0;
  uint64_t MaxMemoryBytes = 0;
  /// Discard the session in the same round trip when this segment leaves
  /// it suspended/running (client gives up after this much progress).
  bool CloseAfter = false;
};

/// RespResult payload: everything one run/resume segment produced — the
/// wire rendering of engine::JobResult plus the session handle.
struct ResultMsg {
  uint64_t ReqId = 0;
  uint64_t JobId = 0;
  uint8_t Status = 0; ///< MachineStatus
  std::string CompileError;
  std::vector<Value> Results; ///< returned values / pending yield request
  std::string WrongReason;
  bool TimedOut = false;
  bool MemExceeded = false;
  bool CacheHit = false;
  /// Non-zero when the job is parked: pass to ReqResume. A zero session
  /// with Status == Suspended means the yield was final (no Park, or the
  /// dispatch was unhandled and the session closed).
  uint64_t SessionId = 0;
  /// False when a Dispatch resume found no handler for the pending yield.
  bool DispatchHandled = true;
  uint64_t ResumeCycles = 0;
  Stats MachineStats; ///< cumulative over the whole job
  double CompileMillis = 0;
  double RunMillis = 0;
  std::string ProfileJson;
};

/// RespCompiled payload.
struct CompiledMsg {
  uint64_t ReqId = 0;
  std::string Key; ///< cache key, 32-hex spelling
  bool Ok = false;
  std::string Error;
  bool CacheHit = false;
};

/// RespError payload.
struct ErrorMsg {
  uint64_t ReqId = 0; ///< 0 when the request id was unrecoverable
  ErrCode Code = ErrCode::Internal;
  std::string Message;
};

//===----------------------------------------------------------------------===//
// Encoding / decoding
//===----------------------------------------------------------------------===//

/// Appends one complete frame (header + payload + checksum) to \p Out.
void encodeFrame(MsgType T, const ByteWriter &Payload,
                 std::vector<uint8_t> &Out);

/// Result of decodeFrameHeader over the first FrameHeaderSize bytes.
struct FrameHeader {
  MsgType Type = MsgType::RespError;
  uint64_t PayloadLen = 0;
};

/// Why a frame was refused (mapped to ErrCode by the server).
enum class FrameError : uint8_t {
  None = 0,
  BadMagic,
  BadVersion,
  Oversized, ///< length prefix exceeds \p MaxPayload
  BadType,
};

/// Validates a frame header. \p MaxPayload caps the length prefix.
FrameError decodeFrameHeader(const uint8_t Header[FrameHeaderSize],
                             uint64_t MaxPayload, FrameHeader &Out);

/// True when the trailing checksum matches the payload bytes.
bool verifyFrameChecksum(const uint8_t *Payload, size_t Len, uint64_t Sum);

// Value encoding: u8 kind, u8 width, u64 raw, f64 payload.
void encodeValue(ByteWriter &W, const Value &V);
Value decodeValue(ByteReader &R);
void encodeValues(ByteWriter &W, const std::vector<Value> &Vs);
std::vector<Value> decodeValues(ByteReader &R);

// Machine statistics travel as their 13 counters, in declaration order.
void encodeStats(ByteWriter &W, const Stats &S);
Stats decodeStats(ByteReader &R);

// Payload encoders/decoders. Decoders return false when the payload is
// malformed (reader tripped or trailing bytes remain).
void encodeCompileRequest(ByteWriter &W, const CompileRequestMsg &M);
bool decodeCompileRequest(ByteReader &R, CompileRequestMsg &M);
void encodeRunRequest(ByteWriter &W, const RunRequestMsg &M);
bool decodeRunRequest(ByteReader &R, RunRequestMsg &M);
void encodeResumeRequest(ByteWriter &W, const ResumeRequestMsg &M);
bool decodeResumeRequest(ByteReader &R, ResumeRequestMsg &M);
void encodeResult(ByteWriter &W, const ResultMsg &M);
bool decodeResult(ByteReader &R, ResultMsg &M);
void encodeCompiled(ByteWriter &W, const CompiledMsg &M);
bool decodeCompiled(ByteReader &R, CompiledMsg &M);
void encodeError(ByteWriter &W, const ErrorMsg &M);
bool decodeError(ByteReader &R, ErrorMsg &M);

} // namespace cmm::svc

#endif // CMM_SVC_PROTOCOL_H
