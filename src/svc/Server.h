//===- svc/Server.h - The cmmexd execution service --------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived execution service behind tools/cmmexd.cpp
/// (docs/SERVICE.md): a socket front end that multiplexes framed protocol
/// requests (svc/Protocol.h) onto one batch Engine.
///
/// Architecture: an acceptor thread hands each connection to a reader
/// thread that does nothing but decode frames; every decoded request is
/// executed on the engine's work-stealing pool, and its response is written
/// back under a per-connection write lock — so one connection can have any
/// number of requests in flight and responses return in completion order.
/// Concurrency is bounded by the pool, not the connection count.
///
/// Tenancy: every request names a tenant; the server clamps the request's
/// fuel / deadline / memory budgets to the tenant's quota and bounds both
/// its concurrently executing requests and its parked sessions. Quota
/// refusals are loud (RespError QuotaExceeded) and counted, never silent
/// degradation.
///
/// Sessions: a parked suspended job (engine/Session.h) owned by the server
/// on behalf of one tenant. Wire resumes are serialized per session (a
/// concurrent second resume is refused SessionBusy), idle sessions expire
/// after ServerOptions::SessionTtlMillis, and every session is accounted
/// for exactly once — resumed to completion, closed, expired, or drained
/// at shutdown.
///
/// Shutdown is graceful by default: admission closes (new work is refused
/// ShuttingDown), every in-flight request runs to completion and its
/// response is delivered, and only then do the sockets close.
///
/// Observability: the server wires svc.* metrics into the engine's own
/// MetricsRegistry, so one ReqStats snapshot carries the protocol layer,
/// the cache, the pool, and the job lifecycle in a single reconcilable
/// JSON object (docs/SERVICE.md lists the catalog and its invariants).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SVC_SERVER_H
#define CMM_SVC_SERVER_H

#include "engine/Engine.h"
#include "engine/RunBudget.h"
#include "svc/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmm::engine {
class JobSession;
}

namespace cmm::svc {

/// Per-tenant resource bounds. The zero-value of a request budget field
/// means "the quota default"; a nonzero request value is clamped to the
/// quota maximum.
struct TenantQuota {
  uint64_t MaxFuel = 500'000'000;        ///< transitions per segment
  double MaxDeadlineMillis = 30'000;     ///< wall clock per segment
  uint64_t MaxMemoryBytes = 256u << 20;  ///< executor footprint
  uint32_t MaxInFlight = 1024;           ///< concurrent run/resume requests
  uint32_t MaxSessions = 4096;           ///< parked sessions
};

struct ServerOptions {
  /// Unix-domain socket path (preferred; hermetic). Exactly one of
  /// UnixPath / UseTcp must be set.
  std::string UnixPath;
  /// TCP on 127.0.0.1:TcpPort instead; port 0 binds an ephemeral port
  /// (read it back via Server::tcpPort()).
  bool UseTcp = false;
  uint16_t TcpPort = 0;

  /// Engine configuration (EngineOptions fields the service exposes).
  unsigned Threads = 0;
  size_t CacheCapacity = 1024;
  std::string CacheDir;
  std::ostream *SnapshotTo = nullptr;
  double SnapshotIntervalMillis = 1000;

  /// Default quota applied to every tenant.
  TenantQuota Quota;
  /// Idle parked sessions are discarded after this long; 0 disables.
  double SessionTtlMillis = 60'000;
  /// Frames with a larger length prefix are refused before any allocation.
  uint64_t MaxFramePayload = 16u << 20;
};

/// One running service instance. Thread-safe after start(); start/
/// requestStop/join are for the owning thread.
class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the acceptor; false with \p Err on any
  /// setup failure. Call once.
  bool start(std::string *Err);

  /// Graceful stop: closes admission, drains in-flight requests, then
  /// closes every socket. Blocks until drained. Idempotent.
  void requestStop();

  /// Joins every service thread. Call after requestStop (or after a
  /// client-initiated ReqShutdown completed).
  void join();

  /// True between a successful start() and the end of a drain.
  bool accepting() const { return Started && !Stopping.load(); }
  /// True once the sockets are torn down (requestStop finished, or a
  /// client-initiated ReqShutdown drained the server) — the daemon's main
  /// loop polls this to know when to exit.
  bool stopped() const { return Closed.load(); }

  /// The actually bound TCP port (ephemeral binds resolve here).
  uint16_t tcpPort() const { return BoundPort; }
  const std::string &unixPath() const { return Opts.UnixPath; }

  engine::Engine &engine() { return *Eng; }
  MetricsRegistry &metrics() { return Eng->metrics(); }
  /// The live stats snapshot ReqStats serves.
  std::string statsJson() const { return Eng->metricsJson(); }

  /// Test introspection.
  int64_t connectionsOpen() const;
  int64_t sessionsOpen() const;

private:
  struct Conn;
  struct SessionEntry;
  struct Tenant;
  struct SvcMetrics;

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> C);
  void reaperLoop();

  /// Decodes and executes one frame; false when the connection must close
  /// (protocol violation or shutdown).
  bool handleFrame(const std::shared_ptr<Conn> &C, MsgType T,
                   const std::vector<uint8_t> &Payload);
  // Request bodies, executed on the engine pool after admission. The
  // reader thread already charged the tenant (and, for resumes, acquired
  // the session's busy flag); these must release through endRequest /
  // closeSession on every path.
  void handleRun(std::shared_ptr<Conn> C, RunRequestMsg M,
                 std::shared_ptr<Tenant> T);
  void handleResume(std::shared_ptr<Conn> C, ResumeRequestMsg M,
                    std::shared_ptr<SessionEntry> E, std::shared_ptr<Tenant> T);
  void handleCompile(std::shared_ptr<Conn> C, CompileRequestMsg M,
                     std::shared_ptr<Tenant> T);
  void handleShutdown(const std::shared_ptr<Conn> &C, uint64_t ReqId);
  /// Counts a request into the drain set, or refuses (false) when the
  /// server is draining. The Stopping check happens under DrainMu — the
  /// same lock requestStop holds while raising Stopping — so a request
  /// admitted here is always visible to waitDrained. Checking Stopping
  /// anywhere else and calling this later reopens the shutdown race this
  /// closes: a frame could slip past the check, land on the pool after
  /// the drain completed, and touch freed server state.
  bool beginRequest();
  void endRequest(const std::shared_ptr<Tenant> &T,
                  std::chrono::steady_clock::time_point T0);

  bool sendFrame(const std::shared_ptr<Conn> &C, MsgType T,
                 const ByteWriter &Payload);
  bool sendError(const std::shared_ptr<Conn> &C, uint64_t ReqId, ErrCode Code,
                 std::string Message);

  std::shared_ptr<Tenant> tenant(const std::string &Name);
  engine::RunBudget clampBudget(uint64_t MaxSteps, double DeadlineMillis,
                                uint64_t MaxMemoryBytes) const;

  /// Unparks session \p Id: erases the table entry, releases the tenant's
  /// session slot, and counts the removal into \p Outcome (closed or
  /// expired). The engine-side outcome is counted when the last reference
  /// to the JobSession drops.
  void closeSession(uint64_t Id, const std::shared_ptr<SessionEntry> &E,
                    Counter &Outcome);

  /// Drains in-flight requests: admission must already be closed.
  void waitDrained();
  void stopSockets();

  ServerOptions Opts;
  std::unique_ptr<engine::Engine> Eng;
  std::unique_ptr<SvcMetrics> SM;

  bool Started = false;
  std::atomic<bool> Stopping{false}; ///< admission closed
  std::atomic<bool> Closed{false};   ///< sockets torn down
  std::mutex StopMu;                 ///< serializes the stop sequence

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Acceptor;
  std::thread Reaper;
  std::mutex ReaperMu;
  std::condition_variable ReaperCv;

  std::mutex ConnMu;
  uint64_t NextConnId = 1;
  std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> Conns;

  std::atomic<int64_t> InFlight{0};
  std::mutex DrainMu;
  std::condition_variable DrainCv;

  mutable std::mutex SessMu;
  std::map<uint64_t, std::shared_ptr<SessionEntry>> Sessions;

  std::mutex TenantMu;
  std::map<std::string, std::shared_ptr<Tenant>> Tenants;
};

} // namespace cmm::svc

#endif // CMM_SVC_SERVER_H
