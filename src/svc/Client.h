//===- svc/Client.h - cmmexd protocol client --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A blocking client for the cmmexd protocol (svc/Protocol.h), shared by
/// the load generator (tools/cmmload.cpp) and the service tests.
///
/// The client is pipelined: send* methods write a frame and return its
/// request id immediately, wait(id) blocks for that specific response
/// (buffering any other responses that arrive first), and waitAny()
/// returns the next response in arrival order — so one connection can keep
/// many requests in flight, matching the server's out-of-order completion.
///
/// Not thread-safe: one Client is one connection driven by one thread
/// (open one Client per load-generator worker).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SVC_CLIENT_H
#define CMM_SVC_CLIENT_H

#include "svc/Protocol.h"

#include <map>
#include <memory>
#include <optional>
#include <string>

namespace cmm::svc {

/// One decoded response frame.
struct Reply {
  MsgType Type = MsgType::RespError;
  uint64_t ReqId = 0;
  ResultMsg Result;      ///< RespResult
  CompiledMsg Compiled;  ///< RespCompiled
  ErrorMsg Error;        ///< RespError
  std::string StatsJson; ///< RespStats
  bool Closed = false;   ///< RespClosed: session existed
};

class Client {
public:
  static std::unique_ptr<Client> connectUnix(const std::string &Path,
                                             std::string *Err = nullptr);
  static std::unique_ptr<Client> connectTcp(const std::string &Host,
                                            uint16_t Port,
                                            std::string *Err = nullptr);
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Sticky transport state: false after a send/receive error or a
  /// server-initiated close, with the reason in error().
  bool ok() const { return Ok; }
  const std::string &error() const { return Err; }

  // Pipelined sends; each returns the request id to wait(…) on. The
  // message's own ReqId is overwritten with a fresh id.
  uint64_t sendPing();
  uint64_t sendStats();
  uint64_t sendCompile(CompileRequestMsg M);
  uint64_t sendRun(RunRequestMsg M);
  uint64_t sendResume(ResumeRequestMsg M);
  uint64_t sendClose(const std::string &Tenant, uint64_t SessionId);
  uint64_t sendShutdown();

  /// Blocks until the response to \p ReqId arrives, buffering others.
  std::optional<Reply> wait(uint64_t ReqId);
  /// Blocks for the next response in arrival order (buffered first).
  std::optional<Reply> waitAny();

  // Synchronous convenience wrappers (one round trip). On a RespError the
  // run/resume wrappers return nullopt and fill \p E when given.
  std::optional<ResultMsg> run(RunRequestMsg M, ErrorMsg *E = nullptr);
  std::optional<ResultMsg> resume(ResumeRequestMsg M, ErrorMsg *E = nullptr);
  std::optional<CompiledMsg> compile(CompileRequestMsg M,
                                     ErrorMsg *E = nullptr);
  std::optional<std::string> statsJson();
  bool ping();
  /// Graceful server shutdown: true once the drain is acked.
  bool shutdownServer();
  bool closeSession(const std::string &Tenant, uint64_t SessionId);

  /// Writes raw bytes to the socket, bypassing the frame encoder — the
  /// protocol-rejection tests forge malformed frames through this.
  bool sendRaw(const void *Data, size_t Size);
  int fd() const { return Fd; }

private:
  explicit Client(int Fd) : Fd(Fd) {}
  uint64_t sendFrame(MsgType T, const ByteWriter &Payload);
  /// Reads and decodes one frame into \p Out; sticky-fails on violations.
  bool readReply(Reply &Out);
  void fail(std::string Why);

  int Fd = -1;
  bool Ok = true;
  std::string Err;
  uint64_t NextReq = 1;
  std::map<uint64_t, Reply> Pending; ///< responses read while waiting
};

} // namespace cmm::svc

#endif // CMM_SVC_CLIENT_H
