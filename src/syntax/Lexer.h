//===- syntax/Lexer.h - C-- lexer -------------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for C--. Comments are /* ... */ and // to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_LEXER_H
#define CMM_SYNTAX_LEXER_H

#include "support/Diagnostics.h"
#include "syntax/Token.h"

#include <string_view>

namespace cmm {

/// Produces a token stream from a source buffer. Does not own the buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes and returns the next token. After end of input, repeatedly
  /// returns Eof.
  Token next();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLoc here() const { return SourceLoc(Line, Col); }

  Token lexIdentOrKeyword();
  Token lexPrimName();
  Token lexNumber();
  Token lexString();
  Token make(TokKind Kind, SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace cmm

#endif // CMM_SYNTAX_LEXER_H
