//===- syntax/PrimOps.cpp -------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "syntax/PrimOps.h"

#include "support/Assert.h"

#include <unordered_map>

using namespace cmm;

std::optional<PrimKind> cmm::lookupPrim(std::string_view Name) {
  static const std::unordered_map<std::string_view, PrimKind> Table = {
      {"%divu", PrimKind::DivU}, {"%divs", PrimKind::DivS},
      {"%modu", PrimKind::ModU}, {"%mods", PrimKind::ModS},
      {"%ltu", PrimKind::LtU},   {"%leu", PrimKind::LeU},
      {"%gtu", PrimKind::GtU},   {"%geu", PrimKind::GeU},
      {"%shra", PrimKind::ShrA}, {"%zx64", PrimKind::Zx64},
      {"%sx64", PrimKind::Sx64}, {"%lo32", PrimKind::Lo32},
      {"%hi32", PrimKind::Hi32}, {"%fadd", PrimKind::FAdd},
      {"%fsub", PrimKind::FSub}, {"%fmul", PrimKind::FMul},
      {"%fdiv", PrimKind::FDiv}, {"%fneg", PrimKind::FNeg},
      {"%feq", PrimKind::FEq},   {"%fne", PrimKind::FNe},
      {"%flt", PrimKind::FLt},   {"%fle", PrimKind::FLe},
      {"%i2f", PrimKind::I2F},   {"%f2i", PrimKind::F2I},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

const char *cmm::primName(PrimKind K) {
  switch (K) {
  case PrimKind::DivU: return "%divu";
  case PrimKind::DivS: return "%divs";
  case PrimKind::ModU: return "%modu";
  case PrimKind::ModS: return "%mods";
  case PrimKind::LtU: return "%ltu";
  case PrimKind::LeU: return "%leu";
  case PrimKind::GtU: return "%gtu";
  case PrimKind::GeU: return "%geu";
  case PrimKind::ShrA: return "%shra";
  case PrimKind::Zx64: return "%zx64";
  case PrimKind::Sx64: return "%sx64";
  case PrimKind::Lo32: return "%lo32";
  case PrimKind::Hi32: return "%hi32";
  case PrimKind::FAdd: return "%fadd";
  case PrimKind::FSub: return "%fsub";
  case PrimKind::FMul: return "%fmul";
  case PrimKind::FDiv: return "%fdiv";
  case PrimKind::FNeg: return "%fneg";
  case PrimKind::FEq: return "%feq";
  case PrimKind::FNe: return "%fne";
  case PrimKind::FLt: return "%flt";
  case PrimKind::FLe: return "%fle";
  case PrimKind::I2F: return "%i2f";
  case PrimKind::F2I: return "%f2i";
  }
  cmm_unreachable("unknown primitive kind");
}

unsigned cmm::primArity(PrimKind K) {
  switch (K) {
  case PrimKind::Zx64:
  case PrimKind::Sx64:
  case PrimKind::Lo32:
  case PrimKind::Hi32:
  case PrimKind::FNeg:
  case PrimKind::I2F:
  case PrimKind::F2I:
    return 1;
  default:
    return 2;
  }
}

Type cmm::primResultType(PrimKind K, Type Arg0) {
  switch (K) {
  case PrimKind::DivU:
  case PrimKind::DivS:
  case PrimKind::ModU:
  case PrimKind::ModS:
  case PrimKind::ShrA:
    return Arg0;
  case PrimKind::LtU:
  case PrimKind::LeU:
  case PrimKind::GtU:
  case PrimKind::GeU:
  case PrimKind::FEq:
  case PrimKind::FNe:
  case PrimKind::FLt:
  case PrimKind::FLe:
    return Type::bits(32);
  case PrimKind::Zx64:
  case PrimKind::Sx64:
    return Type::bits(64);
  case PrimKind::Lo32:
  case PrimKind::Hi32:
    return Type::bits(32);
  case PrimKind::FAdd:
  case PrimKind::FSub:
  case PrimKind::FMul:
  case PrimKind::FDiv:
  case PrimKind::FNeg:
    return Arg0;
  case PrimKind::I2F:
    return Type::flt(64);
  case PrimKind::F2I:
    return Type::bits(32);
  }
  cmm_unreachable("unknown primitive kind");
}

bool cmm::primOperandsOk(PrimKind K, const Type *ArgTys, unsigned NumArgs) {
  if (NumArgs != primArity(K))
    return false;
  switch (K) {
  case PrimKind::DivU:
  case PrimKind::DivS:
  case PrimKind::ModU:
  case PrimKind::ModS:
  case PrimKind::ShrA:
  case PrimKind::LtU:
  case PrimKind::LeU:
  case PrimKind::GtU:
  case PrimKind::GeU:
    return ArgTys[0].isBits() && ArgTys[1] == ArgTys[0];
  case PrimKind::Zx64:
  case PrimKind::Sx64:
    return ArgTys[0] == Type::bits(32);
  case PrimKind::Lo32:
  case PrimKind::Hi32:
    return ArgTys[0] == Type::bits(64);
  case PrimKind::FAdd:
  case PrimKind::FSub:
  case PrimKind::FMul:
  case PrimKind::FDiv:
  case PrimKind::FEq:
  case PrimKind::FNe:
  case PrimKind::FLt:
  case PrimKind::FLe:
    return ArgTys[0].isFloat() && ArgTys[1] == ArgTys[0];
  case PrimKind::FNeg:
    return ArgTys[0].isFloat();
  case PrimKind::I2F:
    return ArgTys[0] == Type::bits(32);
  case PrimKind::F2I:
    return ArgTys[0] == Type::flt(64);
  }
  cmm_unreachable("unknown primitive kind");
}

bool cmm::primCanFail(PrimKind K) {
  switch (K) {
  case PrimKind::DivU:
  case PrimKind::DivS:
  case PrimKind::ModU:
  case PrimKind::ModS:
  case PrimKind::F2I:
    return true;
  default:
    return false;
  }
}
