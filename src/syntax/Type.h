//===- syntax/Type.h - The C-- type system ----------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "extremely modest" C-- type system of Section 3.1: words and
/// floating-point values of various sizes. Types direct the compiler's use of
/// machine resources; they protect nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_TYPE_H
#define CMM_SYNTAX_TYPE_H

#include <cassert>
#include <string>

namespace cmm {

/// One C-- value type: bitsN or floatN.
struct Type {
  enum class Kind : uint8_t { Bits, Float };

  Kind K = Kind::Bits;
  uint8_t Width = 32; ///< In bits: 8/16/32/64 for Bits, 32/64 for Float.

  constexpr Type() = default;
  constexpr Type(Kind K, uint8_t Width) : K(K), Width(Width) {}

  static constexpr Type bits(uint8_t Width) {
    return Type(Kind::Bits, Width);
  }
  static constexpr Type flt(uint8_t Width) {
    return Type(Kind::Float, Width);
  }

  bool isBits() const { return K == Kind::Bits; }
  bool isFloat() const { return K == Kind::Float; }
  unsigned sizeInBytes() const { return Width / 8; }

  /// Renders as "bits32" / "float64".
  std::string str() const {
    return (isBits() ? "bits" : "float") + std::to_string(unsigned(Width));
  }

  friend bool operator==(Type A, Type B) {
    return A.K == B.K && A.Width == B.Width;
  }
  friend bool operator!=(Type A, Type B) { return !(A == B); }
};

/// Target parameters of the reference implementation. Each C-- implementation
/// designates a native data-pointer type and a native code-pointer type
/// (Section 3.1); ours is a 32-bit machine, matching the paper's examples.
struct TargetInfo {
  /// The native data-pointer type: the type of continuation values, data
  /// labels, and string literals.
  static constexpr Type nativePointer() { return Type::bits(32); }
  /// The native code-pointer type: the type of procedure names.
  static constexpr Type nativeCode() { return Type::bits(32); }
  static constexpr unsigned pointerBytes() { return 4; }
};

} // namespace cmm

#endif // CMM_SYNTAX_TYPE_H
