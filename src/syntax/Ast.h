//===- syntax/Ast.h - C-- abstract syntax -----------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the concrete C-- language of the paper (Section 3):
/// modules of procedures, globals and data; statements including calls with
/// `also` annotations, `jump` tail calls, `cut to`, multi-valued `return
/// <i/n>`, and `continuation k(x):` declarations; side-effect-free
/// expressions.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_AST_H
#define CMM_SYNTAX_AST_H

#include "support/Casting.h"
#include "support/Interner.h"
#include "support/SourceLoc.h"
#include "syntax/Type.h"

#include <memory>
#include <vector>

namespace cmm {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base of all C-- expressions. Expressions are pure: "they are evaluated
/// without side effects, which occur only as the result of assignments or
/// calls" (Section 4.3).
class Expr {
public:
  enum class Kind : uint8_t {
    IntLit,
    FloatLit,
    StrLit,
    Name,
    Load,
    Unary,
    Binary,
    Prim,
    Sizeof,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The value type, filled in by Sema.
  Type Ty;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Integer literal. Its width is inferred from context by Sema (default:
/// the native word).
class IntLitExpr : public Expr {
public:
  uint64_t Value;

  IntLitExpr(SourceLoc Loc, uint64_t Value)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }
};

/// Floating-point literal; always float64.
class FloatLitExpr : public Expr {
public:
  double Value;

  FloatLitExpr(SourceLoc Loc, double Value)
      : Expr(Kind::FloatLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::FloatLit; }
};

/// String literal. Denotes the address of an anonymous NUL-terminated data
/// block; its type is the native data-pointer type.
class StrLitExpr : public Expr {
public:
  std::string Value;

  StrLitExpr(SourceLoc Loc, std::string Value)
      : Expr(Kind::StrLit, Loc), Value(std::move(Value)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::StrLit; }
};

/// What a name in an expression refers to, resolved by Sema.
enum class RefKind : uint8_t {
  Unresolved,
  Local,        ///< local variable or parameter
  Global,       ///< global register variable
  Proc,         ///< procedure name: immutable native code-pointer value
  Continuation, ///< continuation of the enclosing procedure: a value
  DataLabel,    ///< address of a data block: native data-pointer value
  Import,       ///< imported name, bound at link time
};

/// A name used as an expression.
class NameExpr : public Expr {
public:
  Symbol Name;
  RefKind Ref = RefKind::Unresolved;

  NameExpr(SourceLoc Loc, Symbol Name) : Expr(Kind::Name, Loc), Name(Name) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Name; }
};

/// Memory load "type[addr]". All memory access is explicit (Section 3.1).
class LoadExpr : public Expr {
public:
  Type AccessTy;
  ExprPtr Addr;

  LoadExpr(SourceLoc Loc, Type AccessTy, ExprPtr Addr)
      : Expr(Kind::Load, Loc), AccessTy(AccessTy), Addr(std::move(Addr)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Load; }
};

/// Unary operators.
enum class UnOp : uint8_t { Neg, Com, Not };

class UnaryExpr : public Expr {
public:
  UnOp Op;
  ExprPtr Operand;

  UnaryExpr(SourceLoc Loc, UnOp Op, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }
};

/// Binary operators. Division and modulus are the fast-but-dangerous signed
/// variants (Section 4.3); shifts are logical; comparisons are signed and
/// yield bits32 0/1. Unsigned comparisons are the %ltu-family primitives.
enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  And, Or, Xor, Shl, Shr,
  Eq, Ne, LtS, LeS, GtS, GeS,
};

class BinaryExpr : public Expr {
public:
  BinOp Op;
  ExprPtr Lhs, Rhs;

  BinaryExpr(SourceLoc Loc, BinOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }
};

/// Primitive operations that can fail, and pure machine-level conversions:
/// %divu(x, y) etc. The %%name slow-but-solid variants are *calls*, not
/// expressions (Section 4.3), and are rejected here by Sema.
class PrimExpr : public Expr {
public:
  Symbol Name; ///< interned spelling including the '%'
  std::vector<ExprPtr> Args;

  PrimExpr(SourceLoc Loc, Symbol Name, std::vector<ExprPtr> Args)
      : Expr(Kind::Prim, Loc), Name(Name), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Prim; }
};

/// sizeof(name): the size in bytes of the named variable's type; used by the
/// Figure 10 stack-cutting idiom `exn_top = exn_top + sizeof(k)`.
class SizeofExpr : public Expr {
public:
  Symbol Name;
  unsigned SizeInBytes = 0; ///< filled by Sema

  SizeofExpr(SourceLoc Loc, Symbol Name)
      : Expr(Kind::Sizeof, Loc), Name(Name) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Sizeof; }
};

//===----------------------------------------------------------------------===//
// Call-site annotations (Section 4.4)
//===----------------------------------------------------------------------===//

/// The complete set of `also` annotations attachable to a call site, plus
/// the call-site descriptors of Section 3.3. Names must denote continuations
/// declared in the same procedure as the call site.
struct Annotations {
  std::vector<Symbol> CutsTo;
  std::vector<Symbol> UnwindsTo;
  std::vector<Symbol> ReturnsTo;
  bool Aborts = false;
  /// Static descriptor expressions (link-time constants) retrievable at run
  /// time through GetDescriptor.
  std::vector<ExprPtr> Descriptors;

  bool empty() const {
    return CutsTo.empty() && UnwindsTo.empty() && ReturnsTo.empty() &&
           !Aborts && Descriptors.empty();
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind : uint8_t {
    VarDecl,
    Assign,
    MemAssign,
    If,
    Goto,
    Label,
    Call,
    Jump,
    Return,
    CutTo,
    Continuation,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// Local variable declaration "bits32 s, p;".
class VarDeclStmt : public Stmt {
public:
  Type DeclTy;
  std::vector<Symbol> Names;

  VarDeclStmt(SourceLoc Loc, Type DeclTy, std::vector<Symbol> Names)
      : Stmt(Kind::VarDecl, Loc), DeclTy(DeclTy), Names(std::move(Names)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }
};

/// Variable assignment "v = e;".
class AssignStmt : public Stmt {
public:
  Symbol Target;
  ExprPtr Value;

  AssignStmt(SourceLoc Loc, Symbol Target, ExprPtr Value)
      : Stmt(Kind::Assign, Loc), Target(Target), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }
};

/// Memory store "type[addr] = e;".
class MemAssignStmt : public Stmt {
public:
  Type AccessTy;
  ExprPtr Addr;
  ExprPtr Value;

  MemAssignStmt(SourceLoc Loc, Type AccessTy, ExprPtr Addr, ExprPtr Value)
      : Stmt(Kind::MemAssign, Loc), AccessTy(AccessTy), Addr(std::move(Addr)),
        Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::MemAssign; }
};

/// Conditional "if e { ... } else { ... }".
class IfStmt : public Stmt {
public:
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;

  IfStmt(SourceLoc Loc, ExprPtr Cond, std::vector<StmtPtr> Then,
         std::vector<StmtPtr> Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }
};

/// "goto L;". The target must be a label in the same procedure (Section 3.2).
class GotoStmt : public Stmt {
public:
  Symbol Target;

  GotoStmt(SourceLoc Loc, Symbol Target)
      : Stmt(Kind::Goto, Loc), Target(Target) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Goto; }
};

/// A label "L:". Names a node in the control-flow graph.
class LabelStmt : public Stmt {
public:
  Symbol Name;

  LabelStmt(SourceLoc Loc, Symbol Name) : Stmt(Kind::Label, Loc), Name(Name) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Label; }
};

/// A procedure call statement, possibly with results:
///   "r, s = g(x) also cuts to k1 also unwinds to k2, k3 also aborts;"
/// Calling the reserved name `yield` suspends the thread into the front-end
/// run-time system (Sections 3.3 and 5.2).
class CallStmt : public Stmt {
public:
  std::vector<Symbol> Results; ///< left-hand-side variables; may be empty
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  Annotations Annots;

  CallStmt(SourceLoc Loc, std::vector<Symbol> Results, ExprPtr Callee,
           std::vector<ExprPtr> Args, Annotations Annots)
      : Stmt(Kind::Call, Loc), Results(std::move(Results)),
        Callee(std::move(Callee)), Args(std::move(Args)),
        Annots(std::move(Annots)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }
};

/// Tail call "jump f(args);". Deallocates the caller's activation before the
/// call (Section 3.1).
class JumpStmt : public Stmt {
public:
  ExprPtr Callee;
  std::vector<ExprPtr> Args;

  JumpStmt(SourceLoc Loc, ExprPtr Callee, std::vector<ExprPtr> Args)
      : Stmt(Kind::Jump, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Jump; }
};

/// "return (v...)", "return <i/n> (v...)". An unannotated return is
/// return <0/0>; the normal return continuation is always index n.
class ReturnStmt : public Stmt {
public:
  unsigned ContIndex = 0; ///< i in return <i/n>
  unsigned AltCount = 0;  ///< n in return <i/n>
  std::vector<ExprPtr> Values;

  ReturnStmt(SourceLoc Loc, unsigned ContIndex, unsigned AltCount,
             std::vector<ExprPtr> Values)
      : Stmt(Kind::Return, Loc), ContIndex(ContIndex), AltCount(AltCount),
        Values(std::move(Values)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }
};

/// "cut to k(args) also cuts to k1;". Truncates the stack to k's activation
/// in constant time without restoring callee-saves registers (Section 4.2).
class CutToStmt : public Stmt {
public:
  ExprPtr Cont;
  std::vector<ExprPtr> Args;
  /// Continuations in the *same* procedure this cut may target; an
  /// unannotated cut to simply exits the current procedure (Section 4.4).
  std::vector<Symbol> AlsoCutsTo;

  CutToStmt(SourceLoc Loc, ExprPtr Cont, std::vector<ExprPtr> Args,
            std::vector<Symbol> AlsoCutsTo)
      : Stmt(Kind::CutTo, Loc), Cont(std::move(Cont)), Args(std::move(Args)),
        AlsoCutsTo(std::move(AlsoCutsTo)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::CutTo; }
};

/// "continuation k(x, y):" — a label-with-parameters. The parameters are
/// variables of the enclosing procedure, not binding occurrences
/// (Section 4.1). The continuation denotes a value encapsulating a stack
/// pointer and a program counter.
class ContinuationStmt : public Stmt {
public:
  Symbol Name;
  std::vector<Symbol> Params;

  ContinuationStmt(SourceLoc Loc, Symbol Name, std::vector<Symbol> Params)
      : Stmt(Kind::Continuation, Loc), Name(Name), Params(std::move(Params)) {}
  static bool classof(const Stmt *S) {
    return S->kind() == Kind::Continuation;
  }
};

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

/// One formal parameter.
struct Param {
  Type Ty;
  Symbol Name;
};

/// A procedure definition.
struct ProcDecl {
  SourceLoc Loc;
  Symbol Name;
  std::vector<Param> Params;
  std::vector<StmtPtr> Body;
};

/// One item of a data block.
struct DataItem {
  enum class Kind : uint8_t { Int, Str, Name, Reserve };
  Kind K = Kind::Int;
  Type Ty = Type::bits(32);
  uint64_t IntValue = 0;   ///< for Int
  std::string StrValue;    ///< for Str (emitted with trailing NUL)
  Symbol NameValue;        ///< for Name (a data label or procedure address)
  uint64_t ReserveCount = 0; ///< for Reserve: number of zeroed cells of Ty
};

/// "data name { ... }" — a statically allocated, initialized memory block.
/// The name denotes the block's address (an immutable native data pointer).
struct DataDecl {
  SourceLoc Loc;
  Symbol Name;
  std::vector<DataItem> Items;
};

/// "global bits32 name;" (or "register ..."): a global register variable.
/// Globals model machine registers, not memory locations (Section 3.1).
struct GlobalDecl {
  SourceLoc Loc;
  Type Ty;
  Symbol Name;
};

/// A C-- compilation unit.
struct Module {
  std::shared_ptr<Interner> Names = std::make_shared<Interner>();
  std::vector<Symbol> Exports;
  std::vector<Symbol> Imports;
  std::vector<GlobalDecl> Globals;
  std::vector<DataDecl> Data;
  std::vector<ProcDecl> Procs;

  /// Finds a procedure by name, or null.
  const ProcDecl *findProc(Symbol Name) const {
    for (const ProcDecl &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
};

} // namespace cmm

#endif // CMM_SYNTAX_AST_H
