//===- syntax/Parser.cpp --------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "syntax/Parser.h"

#include "support/Assert.h"

using namespace cmm;

Token Parser::consume() {
  Token T = std::move(Buf[0]);
  Buf[0] = std::move(Buf[1]);
  Buf[1] = Lex.next();
  return T;
}

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(tok().Loc, std::string("expected ") + tokKindName(K) + " " +
                             Context + ", found " + tokKindName(tok().Kind));
  return false;
}

void Parser::syncToStmtBoundary() {
  while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
    consume();
  accept(TokKind::Semi);
}

bool Parser::atType() const {
  switch (tok().Kind) {
  case TokKind::KwBits8:
  case TokKind::KwBits16:
  case TokKind::KwBits32:
  case TokKind::KwBits64:
  case TokKind::KwFloat32:
  case TokKind::KwFloat64:
    return true;
  default:
    return false;
  }
}

std::optional<Type> Parser::parseTypeOpt() {
  switch (tok().Kind) {
  case TokKind::KwBits8: consume(); return Type::bits(8);
  case TokKind::KwBits16: consume(); return Type::bits(16);
  case TokKind::KwBits32: consume(); return Type::bits(32);
  case TokKind::KwBits64: consume(); return Type::bits(64);
  case TokKind::KwFloat32: consume(); return Type::flt(32);
  case TokKind::KwFloat64: consume(); return Type::flt(64);
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

Module Parser::parseModule() {
  while (!at(TokKind::Eof))
    parseTopDecl();
  return std::move(Mod);
}

void Parser::parseTopDecl() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::KwExport:
    consume();
    parseExportImport(/*IsExport=*/true);
    return;
  case TokKind::KwImport:
    consume();
    parseExportImport(/*IsExport=*/false);
    return;
  case TokKind::KwGlobal:
  case TokKind::KwRegister:
    consume();
    parseGlobal();
    return;
  case TokKind::KwData:
    consume();
    parseData();
    return;
  case TokKind::Ident: {
    Token Name = consume();
    parseProc(intern(Name.Text), Loc);
    return;
  }
  case TokKind::PrimName: {
    // The standard library defines the slow-but-solid %%name procedures
    // (Section 4.3) as ordinary C-- procedures.
    Token Name = consume();
    if (Name.Text.rfind("%%", 0) != 0)
      Diags.error(Loc, "'" + Name.Text +
                           "' is a primitive; only %%names may be defined "
                           "as procedures");
    parseProc(intern(Name.Text), Loc);
    return;
  }
  default:
    Diags.error(Loc, std::string("expected top-level declaration, found ") +
                         tokKindName(tok().Kind));
    consume();
  }
}

void Parser::parseExportImport(bool IsExport) {
  do {
    if (!at(TokKind::Ident) && !at(TokKind::PrimName)) {
      Diags.error(tok().Loc, "expected name in export/import list");
      break;
    }
    Symbol S = intern(consume().Text);
    (IsExport ? Mod.Exports : Mod.Imports).push_back(S);
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "after export/import list");
}

void Parser::parseGlobal() {
  SourceLoc Loc = tok().Loc;
  std::optional<Type> Ty = parseTypeOpt();
  if (!Ty) {
    Diags.error(Loc, "expected type in global declaration");
    syncToStmtBoundary();
    return;
  }
  do {
    if (!at(TokKind::Ident)) {
      Diags.error(tok().Loc, "expected name in global declaration");
      break;
    }
    Token Name = consume();
    Mod.Globals.push_back({Name.Loc, *Ty, intern(Name.Text)});
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "after global declaration");
}

void Parser::parseData() {
  DataDecl D;
  D.Loc = tok().Loc;
  if (!at(TokKind::Ident)) {
    Diags.error(tok().Loc, "expected data block name");
    syncToStmtBoundary();
    return;
  }
  D.Name = intern(consume().Text);
  if (!expect(TokKind::LBrace, "to open data block"))
    return;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    SourceLoc ItemLoc = tok().Loc;
    std::optional<Type> Ty = parseTypeOpt();
    if (!Ty) {
      Diags.error(ItemLoc, "expected type in data item");
      syncToStmtBoundary();
      continue;
    }
    if (accept(TokKind::LBracket)) {
      // "bits32[10];" reserves 10 zeroed cells.
      DataItem Item;
      Item.K = DataItem::Kind::Reserve;
      Item.Ty = *Ty;
      if (at(TokKind::IntLit))
        Item.ReserveCount = consume().IntValue;
      else
        Diags.error(tok().Loc, "expected cell count in data reservation");
      expect(TokKind::RBracket, "after data reservation count");
      expect(TokKind::Semi, "after data item");
      D.Items.push_back(std::move(Item));
      continue;
    }
    do {
      DataItem Item;
      Item.Ty = *Ty;
      if (at(TokKind::IntLit)) {
        Item.K = DataItem::Kind::Int;
        Item.IntValue = consume().IntValue;
      } else if (at(TokKind::StrLit)) {
        Item.K = DataItem::Kind::Str;
        Item.StrValue = consume().Text;
      } else if (at(TokKind::Ident)) {
        Item.K = DataItem::Kind::Name;
        Item.NameValue = intern(consume().Text);
      } else {
        Diags.error(tok().Loc, "expected data value");
        break;
      }
      D.Items.push_back(std::move(Item));
    } while (accept(TokKind::Comma));
    expect(TokKind::Semi, "after data item");
  }
  expect(TokKind::RBrace, "to close data block");
  Mod.Data.push_back(std::move(D));
}

void Parser::parseProc(Symbol Name, SourceLoc Loc) {
  ProcDecl P;
  P.Loc = Loc;
  P.Name = Name;
  if (!expect(TokKind::LParen, "after procedure name"))
    return;
  if (!at(TokKind::RParen)) {
    do {
      SourceLoc PLoc = tok().Loc;
      std::optional<Type> Ty = parseTypeOpt();
      if (!Ty) {
        Diags.error(PLoc, "expected parameter type");
        break;
      }
      if (!at(TokKind::Ident)) {
        Diags.error(tok().Loc, "expected parameter name");
        break;
      }
      P.Params.push_back({*Ty, intern(consume().Text)});
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "after parameter list");
  if (!expect(TokKind::LBrace, "to open procedure body"))
    return;
  P.Body = parseBlock();
  Mod.Procs.push_back(std::move(P));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> Stmts;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (S)
      Stmts.push_back(std::move(S));
  }
  expect(TokKind::RBrace, "to close block");
  return Stmts;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::KwIf:
    consume();
    return parseIf(Loc);
  case TokKind::KwGoto: {
    consume();
    Symbol Target;
    if (at(TokKind::Ident))
      Target = intern(consume().Text);
    else
      Diags.error(tok().Loc, "expected label after 'goto'");
    expect(TokKind::Semi, "after goto");
    return std::make_unique<GotoStmt>(Loc, Target);
  }
  case TokKind::KwReturn:
    consume();
    return parseReturn(Loc);
  case TokKind::KwJump:
    consume();
    return parseJump(Loc);
  case TokKind::KwCut:
    consume();
    expect(TokKind::KwTo, "after 'cut'");
    return parseCutTo(Loc);
  case TokKind::KwContinuation:
    consume();
    return parseContinuation(Loc);
  case TokKind::Ident:
  case TokKind::PrimName:
    return parseIdentStmt();
  default:
    break;
  }

  if (atType()) {
    Type Ty = *parseTypeOpt();
    if (accept(TokKind::LBracket)) {
      // Memory store: "type[addr] = e;"
      ExprPtr Addr = parseExpr();
      expect(TokKind::RBracket, "after store address");
      expect(TokKind::Assign, "in memory store");
      ExprPtr Value = parseExpr();
      expect(TokKind::Semi, "after memory store");
      return std::make_unique<MemAssignStmt>(Loc, Ty, std::move(Addr),
                                             std::move(Value));
    }
    // Local variable declaration.
    std::vector<Symbol> Names;
    do {
      if (!at(TokKind::Ident)) {
        Diags.error(tok().Loc, "expected variable name in declaration");
        break;
      }
      Names.push_back(intern(consume().Text));
    } while (accept(TokKind::Comma));
    expect(TokKind::Semi, "after variable declaration");
    return std::make_unique<VarDeclStmt>(Loc, Ty, std::move(Names));
  }

  Diags.error(Loc, std::string("expected statement, found ") +
                       tokKindName(tok().Kind));
  syncToStmtBoundary();
  return nullptr;
}

StmtPtr Parser::parseIf(SourceLoc Loc) {
  ExprPtr Cond = parseExpr();
  expect(TokKind::LBrace, "to open 'if' body");
  std::vector<StmtPtr> Then = parseBlock();
  std::vector<StmtPtr> Else;
  if (accept(TokKind::KwElse)) {
    if (at(TokKind::KwIf)) {
      SourceLoc ElifLoc = tok().Loc;
      consume();
      Else.push_back(parseIf(ElifLoc));
    } else {
      expect(TokKind::LBrace, "to open 'else' body");
      Else = parseBlock();
    }
  }
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseReturn(SourceLoc Loc) {
  unsigned ContIndex = 0, AltCount = 0;
  if (accept(TokKind::Less)) {
    if (at(TokKind::IntLit))
      ContIndex = static_cast<unsigned>(consume().IntValue);
    else
      Diags.error(tok().Loc, "expected continuation index in return <i/n>");
    expect(TokKind::Slash, "in return <i/n>");
    if (at(TokKind::IntLit))
      AltCount = static_cast<unsigned>(consume().IntValue);
    else
      Diags.error(tok().Loc, "expected continuation count in return <i/n>");
    expect(TokKind::Greater, "in return <i/n>");
  }
  std::vector<ExprPtr> Values;
  if (accept(TokKind::LParen)) {
    if (!at(TokKind::RParen))
      Values = parseArgs();
    expect(TokKind::RParen, "after return values");
  }
  expect(TokKind::Semi, "after return");
  return std::make_unique<ReturnStmt>(Loc, ContIndex, AltCount,
                                      std::move(Values));
}

StmtPtr Parser::parseJump(SourceLoc Loc) {
  ExprPtr Callee = parsePrimary();
  expect(TokKind::LParen, "after jump target");
  std::vector<ExprPtr> Args;
  if (!at(TokKind::RParen))
    Args = parseArgs();
  expect(TokKind::RParen, "after jump arguments");
  expect(TokKind::Semi, "after jump");
  return std::make_unique<JumpStmt>(Loc, std::move(Callee), std::move(Args));
}

StmtPtr Parser::parseCutTo(SourceLoc Loc) {
  ExprPtr Cont = parsePrimary();
  expect(TokKind::LParen, "after cut to target");
  std::vector<ExprPtr> Args;
  if (!at(TokKind::RParen))
    Args = parseArgs();
  expect(TokKind::RParen, "after cut to arguments");
  Annotations Annots = parseAnnotations();
  if (!Annots.UnwindsTo.empty() || !Annots.ReturnsTo.empty() || Annots.Aborts)
    Diags.error(Loc, "only 'also cuts to' may annotate a cut to statement");
  expect(TokKind::Semi, "after cut to");
  return std::make_unique<CutToStmt>(Loc, std::move(Cont), std::move(Args),
                                     std::move(Annots.CutsTo));
}

StmtPtr Parser::parseContinuation(SourceLoc Loc) {
  if (!at(TokKind::Ident)) {
    Diags.error(tok().Loc, "expected continuation name");
    syncToStmtBoundary();
    return nullptr;
  }
  Symbol Name = intern(consume().Text);
  std::vector<Symbol> Params;
  if (accept(TokKind::LParen)) {
    if (!at(TokKind::RParen)) {
      do {
        if (!at(TokKind::Ident)) {
          Diags.error(tok().Loc, "expected continuation parameter name");
          break;
        }
        Params.push_back(intern(consume().Text));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after continuation parameters");
  }
  expect(TokKind::Colon, "after continuation header");
  return std::make_unique<ContinuationStmt>(Loc, Name, std::move(Params));
}

/// Statements that start with an identifier: label, call, or assignment.
StmtPtr Parser::parseIdentStmt() {
  SourceLoc Loc = tok().Loc;

  // "%%divu(...)" call statement (no results).
  if (at(TokKind::PrimName)) {
    Token Callee = consume();
    if (Callee.Text.rfind("%%", 0) != 0)
      Diags.error(Loc, "primitive '" + Callee.Text +
                           "' cannot be used as a statement; only %%names "
                           "denote callable procedures");
    auto CalleeExpr = std::make_unique<NameExpr>(Loc, intern(Callee.Text));
    return parseCallTail(Loc, {}, std::move(CalleeExpr));
  }

  // Label?
  if (tok(1).is(TokKind::Colon)) {
    Symbol Name = intern(consume().Text);
    consume(); // ':'
    return std::make_unique<LabelStmt>(Loc, Name);
  }

  // Call without results: "f(args) annots;"
  if (tok(1).is(TokKind::LParen)) {
    Symbol Callee = intern(consume().Text);
    auto CalleeExpr = std::make_unique<NameExpr>(Loc, Callee);
    return parseCallTail(Loc, {}, std::move(CalleeExpr));
  }

  // Otherwise: "x = e;", "x, y = f(...);"
  std::vector<Symbol> Lhs;
  do {
    if (!at(TokKind::Ident)) {
      Diags.error(tok().Loc, "expected variable on left-hand side");
      syncToStmtBoundary();
      return nullptr;
    }
    Lhs.push_back(intern(consume().Text));
  } while (accept(TokKind::Comma));
  if (!expect(TokKind::Assign, "in assignment")) {
    syncToStmtBoundary();
    return nullptr;
  }

  // Call on the right-hand side? Calls are statements, not expressions, so
  // detect "name (" / "%%name (" here.
  bool IsCall =
      (at(TokKind::Ident) && tok(1).is(TokKind::LParen)) ||
      (at(TokKind::PrimName) && tok().Text.rfind("%%", 0) == 0);
  if (IsCall) {
    Token CalleeTok = consume();
    auto CalleeExpr =
        std::make_unique<NameExpr>(CalleeTok.Loc, intern(CalleeTok.Text));
    return parseCallTail(Loc, std::move(Lhs), std::move(CalleeExpr));
  }

  if (Lhs.size() != 1)
    Diags.error(Loc, "multiple assignment targets require a call on the "
                     "right-hand side");
  ExprPtr Value = parseExpr();
  expect(TokKind::Semi, "after assignment");
  return std::make_unique<AssignStmt>(Loc, Lhs.front(), std::move(Value));
}

StmtPtr Parser::parseCallTail(SourceLoc Loc, std::vector<Symbol> Results,
                              ExprPtr Callee) {
  expect(TokKind::LParen, "after callee");
  std::vector<ExprPtr> Args;
  if (!at(TokKind::RParen))
    Args = parseArgs();
  expect(TokKind::RParen, "after call arguments");
  Annotations Annots = parseAnnotations();
  expect(TokKind::Semi, "after call");
  return std::make_unique<CallStmt>(Loc, std::move(Results), std::move(Callee),
                                    std::move(Args), std::move(Annots));
}

Annotations Parser::parseAnnotations() {
  Annotations A;
  while (true) {
    if (accept(TokKind::KwAlso)) {
      if (accept(TokKind::KwCuts)) {
        expect(TokKind::KwTo, "after 'also cuts'");
        for (Symbol S : parseNameList("in also cuts to"))
          A.CutsTo.push_back(S);
      } else if (accept(TokKind::KwUnwinds)) {
        expect(TokKind::KwTo, "after 'also unwinds'");
        for (Symbol S : parseNameList("in also unwinds to"))
          A.UnwindsTo.push_back(S);
      } else if (accept(TokKind::KwReturns)) {
        expect(TokKind::KwTo, "after 'also returns'");
        for (Symbol S : parseNameList("in also returns to"))
          A.ReturnsTo.push_back(S);
      } else if (accept(TokKind::KwAborts)) {
        A.Aborts = true;
      } else {
        Diags.error(tok().Loc,
                    "expected 'cuts to', 'unwinds to', 'returns to', or "
                    "'aborts' after 'also'");
        break;
      }
      continue;
    }
    if (accept(TokKind::KwDescriptors)) {
      do
        A.Descriptors.push_back(parseExpr());
      while (accept(TokKind::Comma));
      continue;
    }
    break;
  }
  return A;
}

std::vector<Symbol> Parser::parseNameList(const char *Context) {
  std::vector<Symbol> Names;
  do {
    if (!at(TokKind::Ident)) {
      Diags.error(tok().Loc, std::string("expected continuation name ") +
                                 Context);
      break;
    }
    Names.push_back(intern(consume().Text));
  } while (accept(TokKind::Comma));
  return Names;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
/// Binding strength of a binary operator token; 0 = not a binary operator.
unsigned binPrec(TokKind K) {
  switch (K) {
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Less:
  case TokKind::LessEq:
  case TokKind::Greater:
  case TokKind::GreaterEq:
    return 7;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Amp:
    return 5;
  case TokKind::Caret:
    return 4;
  case TokKind::Pipe:
    return 3;
  default:
    return 0;
  }
}

BinOp binOpFor(TokKind K) {
  switch (K) {
  case TokKind::Star: return BinOp::Mul;
  case TokKind::Slash: return BinOp::Div;
  case TokKind::Percent: return BinOp::Mod;
  case TokKind::Plus: return BinOp::Add;
  case TokKind::Minus: return BinOp::Sub;
  case TokKind::Shl: return BinOp::Shl;
  case TokKind::Shr: return BinOp::Shr;
  case TokKind::Less: return BinOp::LtS;
  case TokKind::LessEq: return BinOp::LeS;
  case TokKind::Greater: return BinOp::GtS;
  case TokKind::GreaterEq: return BinOp::GeS;
  case TokKind::EqEq: return BinOp::Eq;
  case TokKind::NotEq: return BinOp::Ne;
  case TokKind::Amp: return BinOp::And;
  case TokKind::Caret: return BinOp::Xor;
  case TokKind::Pipe: return BinOp::Or;
  default: cmm_unreachable("not a binary operator token");
  }
}
} // namespace

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseUnary();
  return parseBinaryRhs(1, std::move(Lhs));
}

ExprPtr Parser::parseBinaryRhs(unsigned MinPrec, ExprPtr Lhs) {
  while (true) {
    unsigned Prec = binPrec(tok().Kind);
    if (Prec < MinPrec)
      return Lhs;
    Token Op = consume();
    ExprPtr Rhs = parseUnary();
    // Left-associative: bind tighter operators into Rhs first.
    while (binPrec(tok().Kind) > Prec)
      Rhs = parseBinaryRhs(binPrec(tok().Kind), std::move(Rhs));
    Lhs = std::make_unique<BinaryExpr>(Op.Loc, binOpFor(Op.Kind),
                                       std::move(Lhs), std::move(Rhs));
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = tok().Loc;
  if (accept(TokKind::Minus))
    return std::make_unique<UnaryExpr>(Loc, UnOp::Neg, parseUnary());
  if (accept(TokKind::Tilde))
    return std::make_unique<UnaryExpr>(Loc, UnOp::Com, parseUnary());
  if (accept(TokKind::Bang))
    return std::make_unique<UnaryExpr>(Loc, UnOp::Not, parseUnary());
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokKind::IntLit:
    return std::make_unique<IntLitExpr>(Loc, consume().IntValue);
  case TokKind::FloatLit:
    return std::make_unique<FloatLitExpr>(Loc, consume().FloatValue);
  case TokKind::StrLit:
    return std::make_unique<StrLitExpr>(Loc, consume().Text);
  case TokKind::Ident:
    return std::make_unique<NameExpr>(Loc, intern(consume().Text));
  case TokKind::PrimName: {
    Token Prim = consume();
    if (Prim.Text.rfind("%%", 0) == 0) {
      Diags.error(Loc, "'" + Prim.Text +
                           "' is a procedure and must be called as a "
                           "statement, not used in an expression");
    }
    expect(TokKind::LParen, "after primitive name");
    std::vector<ExprPtr> Args;
    if (!at(TokKind::RParen))
      Args = parseArgs();
    expect(TokKind::RParen, "after primitive arguments");
    return std::make_unique<PrimExpr>(Loc, intern(Prim.Text),
                                      std::move(Args));
  }
  case TokKind::KwSizeof: {
    consume();
    expect(TokKind::LParen, "after sizeof");
    Symbol Name;
    if (at(TokKind::Ident))
      Name = intern(consume().Text);
    else
      Diags.error(tok().Loc, "expected name in sizeof");
    expect(TokKind::RParen, "after sizeof operand");
    return std::make_unique<SizeofExpr>(Loc, Name);
  }
  case TokKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    break;
  }

  if (atType()) {
    Type Ty = *parseTypeOpt();
    expect(TokKind::LBracket, "after type in memory load");
    ExprPtr Addr = parseExpr();
    expect(TokKind::RBracket, "after load address");
    return std::make_unique<LoadExpr>(Loc, Ty, std::move(Addr));
  }

  Diags.error(Loc, std::string("expected expression, found ") +
                       tokKindName(tok().Kind));
  consume();
  return std::make_unique<IntLitExpr>(Loc, 0);
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  do
    Args.push_back(parseExpr());
  while (accept(TokKind::Comma));
  return Args;
}
