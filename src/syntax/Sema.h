//===- syntax/Sema.h - C-- semantic checks ----------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and the static checks of the paper: annotation names must
/// be continuations declared in the same procedure as the call site
/// (Section 4.4), continuation "parameters" must be variables of the
/// enclosing procedure (Section 4.1), goto targets must be labels in the same
/// procedure (Section 3.2). Also performs the modest width checking the C--
/// type system calls for — it directs machine resources, it protects nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_SEMA_H
#define CMM_SYNTAX_SEMA_H

#include "support/Diagnostics.h"
#include "syntax/Ast.h"

#include <unordered_map>
#include <unordered_set>

namespace cmm {

/// Per-procedure name tables built by Sema and reused by the translator.
struct ProcInfo {
  std::unordered_map<Symbol, Type> Vars; ///< params and locals
  std::unordered_map<Symbol, const ContinuationStmt *> Continuations;
  std::unordered_set<Symbol> Labels;
};

/// Module-wide resolution results.
struct SemaInfo {
  std::unordered_map<const ProcDecl *, ProcInfo> Procs;
  std::unordered_map<Symbol, Type> Globals;
  std::unordered_set<Symbol> DataLabels;
  std::unordered_set<Symbol> ProcNames;
  std::unordered_set<Symbol> ImportNames;
};

/// Resolves and checks \p Mod, mutating NameExpr::Ref, Expr::Ty and
/// SizeofExpr::SizeInBytes in place. Returns the tables; on error Diags has
/// errors and the module must not be translated.
SemaInfo analyze(Module &Mod, DiagnosticEngine &Diags);

} // namespace cmm

#endif // CMM_SYNTAX_SEMA_H
