//===- syntax/Token.h - C-- tokens ------------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the concrete C-- language of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_TOKEN_H
#define CMM_SYNTAX_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace cmm {

/// Lexical token kinds.
enum class TokKind : uint8_t {
  Eof,
  Ident,    ///< plain identifier
  PrimName, ///< %name — fast-but-dangerous primitive (Section 4.3)
  IntLit,
  FloatLit,
  StrLit,

  // Keywords.
  KwExport,
  KwImport,
  KwGlobal,
  KwRegister, ///< synonym for global (Figure 10 declares "register bits32")
  KwData,
  KwBits8,
  KwBits16,
  KwBits32,
  KwBits64,
  KwFloat32,
  KwFloat64,
  KwIf,
  KwElse,
  KwGoto,
  KwReturn,
  KwJump,
  KwCut,
  KwTo,
  KwContinuation,
  KwAlso,
  KwCuts,
  KwUnwinds,
  KwReturns,
  KwAborts,
  KwDescriptors,
  KwSizeof,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Assign,   ///< =
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Shl,      ///< <<
  Shr,      ///< >>
  Tilde,
  Bang,
};

/// One lexed token. Identifier/literal payloads are stored as text; the
/// parser interns identifiers and parses numbers.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< spelling for Ident/PrimName/StrLit
  uint64_t IntValue = 0;
  double FloatValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Human-readable token-kind name for diagnostics.
const char *tokKindName(TokKind K);

} // namespace cmm

#endif // CMM_SYNTAX_TOKEN_H
