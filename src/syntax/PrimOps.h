//===- syntax/PrimOps.h - Primitive operations ------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The %name primitive operations (Section 4.3). These are the
/// fast-but-dangerous variants: %divu(x, 0) has unspecified behaviour. The
/// slow-but-solid %%name variants are ordinary procedures provided by the
/// standard library (src/sem/StdLib), written in C-- on top of `yield`.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_PRIMOPS_H
#define CMM_SYNTAX_PRIMOPS_H

#include "syntax/Type.h"

#include <optional>
#include <string_view>

namespace cmm {

/// Identifies a primitive operation.
enum class PrimKind : uint8_t {
  // Fast-but-dangerous integer division family; unspecified on zero divisor.
  DivU,
  DivS,
  ModU,
  ModS,
  // Unsigned comparisons (infix comparisons are signed).
  LtU,
  LeU,
  GtU,
  GeU,
  // Arithmetic shift right (infix >> is logical).
  ShrA,
  // Width conversions.
  Zx64, ///< zero-extend bits32 -> bits64
  Sx64, ///< sign-extend bits32 -> bits64
  Lo32, ///< low half of bits64
  Hi32, ///< high half of bits64
  // Floating point.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  FEq,
  FNe,
  FLt,
  FLe,
  // Conversions between integer and float.
  I2F, ///< signed bits32 -> float64
  F2I, ///< float64 -> signed bits32, truncating; unspecified on overflow
};

/// Looks up a primitive by its spelling including the leading '%'
/// (e.g. "%divu"). Returns nullopt for unknown names.
std::optional<PrimKind> lookupPrim(std::string_view Name);

/// The spelling (including '%') of \p K.
const char *primName(PrimKind K);

/// Number of operands of \p K.
unsigned primArity(PrimKind K);

/// Result type given the first operand type \p Arg0 (primitives are
/// width-generic where sensible).
Type primResultType(PrimKind K, Type Arg0);

/// True iff the operand types are acceptable.
bool primOperandsOk(PrimKind K, const Type *ArgTys, unsigned NumArgs);

/// True for primitives whose failure behaviour is unspecified (the divide
/// family); used by the machine to flag "went wrong: unspecified primitive".
bool primCanFail(PrimKind K);

} // namespace cmm

#endif // CMM_SYNTAX_PRIMOPS_H
