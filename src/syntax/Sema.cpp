//===- syntax/Sema.cpp ----------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "syntax/Sema.h"

#include "support/Assert.h"
#include "support/Casting.h"
#include "syntax/PrimOps.h"

using namespace cmm;

namespace {

class SemaImpl {
public:
  SemaImpl(Module &Mod, DiagnosticEngine &Diags) : Mod(Mod), Diags(Diags) {
    YieldSym = Mod.Names->intern("yield");
  }

  SemaInfo run();

private:
  std::string spell(Symbol S) { return Mod.Names->spelling(S); }

  void collectModuleNames();
  void collectProcNames(const ProcDecl &P, ProcInfo &PI);
  void collectStmtNames(const Stmt *S, ProcInfo &PI, bool TopLevel);

  void checkProc(const ProcDecl &P, ProcInfo &PI);
  void checkStmts(const std::vector<StmtPtr> &Stmts, ProcInfo &PI,
                  bool TopLevel);
  void checkStmt(Stmt *S, ProcInfo &PI, bool TopLevel);
  void checkAnnotations(Annotations &A, ProcInfo &PI, SourceLoc Loc);
  bool stmtTerminates(const Stmt *S) const;

  /// Resolves \p E; \p Expected is the type the context wants, used to give
  /// integer literals a width. Null means "no expectation".
  void resolveExpr(Expr *E, const Type *Expected, ProcInfo &PI);
  void resolveCallee(Expr *E, ProcInfo &PI);

  Module &Mod;
  DiagnosticEngine &Diags;
  SemaInfo Info;
  Symbol YieldSym;
};

SemaInfo SemaImpl::run() {
  collectModuleNames();
  for (ProcDecl &P : Mod.Procs) {
    ProcInfo &PI = Info.Procs[&P];
    collectProcNames(P, PI);
  }
  for (ProcDecl &P : Mod.Procs)
    checkProc(P, Info.Procs[&P]);
  return std::move(Info);
}

void SemaImpl::collectModuleNames() {
  auto DefineTop = [&](Symbol Name, SourceLoc Loc) {
    bool Fresh = !Info.ProcNames.count(Name) && !Info.DataLabels.count(Name) &&
                 !Info.Globals.count(Name);
    if (!Fresh)
      Diags.error(Loc, "redefinition of '" + spell(Name) + "'");
    return Fresh;
  };
  for (const GlobalDecl &G : Mod.Globals)
    if (DefineTop(G.Name, G.Loc))
      Info.Globals.emplace(G.Name, G.Ty);
  for (const DataDecl &D : Mod.Data)
    if (DefineTop(D.Name, D.Loc))
      Info.DataLabels.insert(D.Name);
  for (const ProcDecl &P : Mod.Procs) {
    if (P.Name == YieldSym)
      Diags.error(P.Loc, "'yield' is reserved for the run-time system and "
                         "cannot be defined");
    if (DefineTop(P.Name, P.Loc))
      Info.ProcNames.insert(P.Name);
  }
  for (Symbol S : Mod.Imports) {
    if (Info.ProcNames.count(S) || Info.Globals.count(S) ||
        Info.DataLabels.count(S))
      Diags.error(SourceLoc(), "import '" + spell(S) +
                                   "' collides with a definition");
    else
      Info.ImportNames.insert(S);
  }
}

void SemaImpl::collectProcNames(const ProcDecl &P, ProcInfo &PI) {
  for (const Param &Prm : P.Params) {
    if (!PI.Vars.emplace(Prm.Name, Prm.Ty).second)
      Diags.error(P.Loc, "duplicate parameter '" + spell(Prm.Name) + "'");
  }
  for (const StmtPtr &S : P.Body)
    collectStmtNames(S.get(), PI, /*TopLevel=*/true);
}

void SemaImpl::collectStmtNames(const Stmt *S, ProcInfo &PI, bool TopLevel) {
  if (const auto *VD = dyn_cast<VarDeclStmt>(S)) {
    for (Symbol Name : VD->Names) {
      if (PI.Continuations.count(Name)) {
        Diags.error(VD->loc(), "variable '" + spell(Name) +
                                   "' collides with a continuation");
        continue;
      }
      if (!PI.Vars.emplace(Name, VD->DeclTy).second)
        Diags.error(VD->loc(), "redeclaration of variable '" + spell(Name) +
                                   "'");
    }
    return;
  }
  if (const auto *L = dyn_cast<LabelStmt>(S)) {
    if (!PI.Labels.insert(L->Name).second)
      Diags.error(L->loc(), "duplicate label '" + spell(L->Name) + "'");
    return;
  }
  if (const auto *C = dyn_cast<ContinuationStmt>(S)) {
    if (!TopLevel)
      Diags.error(C->loc(), "continuations may be declared only at the top "
                            "level of a procedure body");
    if (PI.Vars.count(C->Name))
      Diags.error(C->loc(), "continuation '" + spell(C->Name) +
                                "' collides with a variable");
    if (!PI.Continuations.emplace(C->Name, C).second)
      Diags.error(C->loc(),
                  "duplicate continuation '" + spell(C->Name) + "'");
    return;
  }
  if (const auto *If = dyn_cast<IfStmt>(S)) {
    for (const StmtPtr &T : If->Then)
      collectStmtNames(T.get(), PI, /*TopLevel=*/false);
    for (const StmtPtr &E : If->Else)
      collectStmtNames(E.get(), PI, /*TopLevel=*/false);
  }
}

bool SemaImpl::stmtTerminates(const Stmt *S) const {
  switch (S->kind()) {
  case Stmt::Kind::Return:
  case Stmt::Kind::Jump:
  case Stmt::Kind::CutTo:
  case Stmt::Kind::Goto:
    return true;
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    if (If->Then.empty() || If->Else.empty())
      return false;
    return stmtTerminates(If->Then.back().get()) &&
           stmtTerminates(If->Else.back().get());
  }
  default:
    return false;
  }
}

void SemaImpl::checkProc(const ProcDecl &P, ProcInfo &PI) {
  // Control must not fall through into a continuation's CopyIn: the argument
  // area would hold stale values. Require the preceding statement to leave.
  const Stmt *Prev = nullptr;
  for (const StmtPtr &S : P.Body) {
    if (isa<ContinuationStmt>(S.get())) {
      if (!Prev || !stmtTerminates(Prev))
        Diags.error(S->loc(), "control may fall through into continuation "
                              "'" +
                                  spell(cast<ContinuationStmt>(S.get())->Name) +
                                  "'");
    }
    if (!isa<VarDeclStmt>(S.get()))
      Prev = S.get();
  }
  checkStmts(P.Body, PI, /*TopLevel=*/true);
}

void SemaImpl::checkStmts(const std::vector<StmtPtr> &Stmts, ProcInfo &PI,
                          bool TopLevel) {
  for (const StmtPtr &S : Stmts)
    checkStmt(S.get(), PI, TopLevel);
}

void SemaImpl::checkAnnotations(Annotations &A, ProcInfo &PI, SourceLoc Loc) {
  auto CheckConts = [&](const std::vector<Symbol> &Names, const char *What) {
    for (Symbol Name : Names)
      if (!PI.Continuations.count(Name))
        Diags.error(Loc, std::string("'") + spell(Name) + "' in '" + What +
                             "' is not a continuation of this procedure");
  };
  CheckConts(A.CutsTo, "also cuts to");
  CheckConts(A.UnwindsTo, "also unwinds to");
  CheckConts(A.ReturnsTo, "also returns to");
  for (ExprPtr &D : A.Descriptors) {
    resolveExpr(D.get(), nullptr, PI);
    bool Constant = isa<IntLitExpr>(D.get()) || isa<StrLitExpr>(D.get());
    if (const auto *N = dyn_cast<NameExpr>(D.get()))
      Constant = N->Ref == RefKind::DataLabel || N->Ref == RefKind::Proc ||
                 N->Ref == RefKind::Import;
    if (!Constant)
      Diags.error(D->loc(), "call-site descriptors must be link-time "
                            "constants");
  }
}

void SemaImpl::checkStmt(Stmt *S, ProcInfo &PI, bool TopLevel) {
  switch (S->kind()) {
  case Stmt::Kind::VarDecl:
    return; // collected earlier

  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    Type TargetTy;
    auto It = PI.Vars.find(A->Target);
    if (It != PI.Vars.end()) {
      TargetTy = It->second;
    } else {
      auto GIt = Info.Globals.find(A->Target);
      if (GIt != Info.Globals.end()) {
        TargetTy = GIt->second;
      } else {
        Diags.error(A->loc(), "assignment to undeclared variable '" +
                                  spell(A->Target) + "'");
        TargetTy = Type::bits(32);
      }
    }
    resolveExpr(A->Value.get(), &TargetTy, PI);
    if (A->Value->Ty != TargetTy)
      Diags.error(A->loc(), "assigning " + A->Value->Ty.str() + " value to " +
                                TargetTy.str() + " variable '" +
                                spell(A->Target) + "'");
    return;
  }

  case Stmt::Kind::MemAssign: {
    auto *M = cast<MemAssignStmt>(S);
    Type PtrTy = TargetInfo::nativePointer();
    resolveExpr(M->Addr.get(), &PtrTy, PI);
    resolveExpr(M->Value.get(), &M->AccessTy, PI);
    if (M->Addr->Ty != PtrTy)
      Diags.error(M->loc(), "store address must have the native data-pointer "
                            "type " +
                                PtrTy.str());
    if (M->Value->Ty != M->AccessTy)
      Diags.error(M->loc(), "storing " + M->Value->Ty.str() + " value as " +
                                M->AccessTy.str());
    return;
  }

  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    resolveExpr(If->Cond.get(), nullptr, PI);
    if (!If->Cond->Ty.isBits())
      Diags.error(If->Cond->loc(), "condition must be a bits value");
    checkStmts(If->Then, PI, /*TopLevel=*/false);
    checkStmts(If->Else, PI, /*TopLevel=*/false);
    return;
  }

  case Stmt::Kind::Goto: {
    auto *G = cast<GotoStmt>(S);
    if (G->Target && !PI.Labels.count(G->Target))
      Diags.error(G->loc(), "goto target '" + spell(G->Target) +
                                "' is not a label in this procedure");
    return;
  }

  case Stmt::Kind::Label:
    return;

  case Stmt::Kind::Call: {
    auto *C = cast<CallStmt>(S);
    resolveCallee(C->Callee.get(), PI);
    for (ExprPtr &Arg : C->Args)
      resolveExpr(Arg.get(), nullptr, PI);
    for (Symbol R : C->Results)
      if (!PI.Vars.count(R) && !Info.Globals.count(R))
        Diags.error(C->loc(), "call result '" + spell(R) +
                                  "' is not a declared variable");
    checkAnnotations(C->Annots, PI, C->loc());
    return;
  }

  case Stmt::Kind::Jump: {
    auto *J = cast<JumpStmt>(S);
    resolveCallee(J->Callee.get(), PI);
    for (ExprPtr &Arg : J->Args)
      resolveExpr(Arg.get(), nullptr, PI);
    return;
  }

  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->ContIndex > R->AltCount)
      Diags.error(R->loc(), "return continuation index exceeds count in "
                            "return <i/n>");
    for (ExprPtr &V : R->Values)
      resolveExpr(V.get(), nullptr, PI);
    return;
  }

  case Stmt::Kind::CutTo: {
    auto *C = cast<CutToStmt>(S);
    Type PtrTy = TargetInfo::nativePointer();
    resolveExpr(C->Cont.get(), &PtrTy, PI);
    for (ExprPtr &Arg : C->Args)
      resolveExpr(Arg.get(), nullptr, PI);
    for (Symbol K : C->AlsoCutsTo)
      if (!PI.Continuations.count(K))
        Diags.error(C->loc(), "'" + spell(K) + "' in 'also cuts to' is not "
                                                "a continuation of this "
                                                "procedure");
    return;
  }

  case Stmt::Kind::Continuation: {
    auto *C = cast<ContinuationStmt>(S);
    (void)TopLevel; // nesting reported during collection
    for (Symbol Prm : C->Params)
      if (!PI.Vars.count(Prm))
        Diags.error(C->loc(),
                    "continuation parameter '" + spell(Prm) +
                        "' must be a variable of the enclosing procedure");
    return;
  }
  }
  cmm_unreachable("unknown statement kind");
}

void SemaImpl::resolveCallee(Expr *E, ProcInfo &PI) {
  auto *N = dyn_cast<NameExpr>(E);
  if (!N) {
    Diags.error(E->loc(), "call target must be a name");
    return;
  }
  if (N->Name == YieldSym) {
    N->Ref = RefKind::Proc;
    N->Ty = TargetInfo::nativeCode();
    return;
  }
  const std::string &Spelling = spell(N->Name);
  if (Spelling.rfind("%%", 0) == 0 && !Info.ProcNames.count(N->Name)) {
    // Slow-but-solid primitives are supplied by the standard library; treat
    // unresolved uses as imports bound at link time.
    Info.ImportNames.insert(N->Name);
    N->Ref = RefKind::Import;
    N->Ty = TargetInfo::nativeCode();
    return;
  }
  resolveExpr(E, nullptr, PI);
}

void SemaImpl::resolveExpr(Expr *E, const Type *Expected, ProcInfo &PI) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    E->Ty = (Expected && Expected->isBits()) ? *Expected : Type::bits(32);
    return;
  case Expr::Kind::FloatLit:
    E->Ty = (Expected && Expected->isFloat()) ? *Expected : Type::flt(64);
    return;
  case Expr::Kind::StrLit:
    E->Ty = TargetInfo::nativePointer();
    return;

  case Expr::Kind::Name: {
    auto *N = cast<NameExpr>(E);
    auto VIt = PI.Vars.find(N->Name);
    if (VIt != PI.Vars.end()) {
      N->Ref = RefKind::Local;
      N->Ty = VIt->second;
      return;
    }
    if (PI.Continuations.count(N->Name)) {
      N->Ref = RefKind::Continuation;
      N->Ty = TargetInfo::nativePointer();
      return;
    }
    auto GIt = Info.Globals.find(N->Name);
    if (GIt != Info.Globals.end()) {
      N->Ref = RefKind::Global;
      N->Ty = GIt->second;
      return;
    }
    if (Info.DataLabels.count(N->Name)) {
      N->Ref = RefKind::DataLabel;
      N->Ty = TargetInfo::nativePointer();
      return;
    }
    if (Info.ProcNames.count(N->Name) || N->Name == YieldSym) {
      N->Ref = RefKind::Proc;
      N->Ty = TargetInfo::nativeCode();
      return;
    }
    if (Info.ImportNames.count(N->Name)) {
      N->Ref = RefKind::Import;
      N->Ty = TargetInfo::nativePointer();
      return;
    }
    Diags.error(N->loc(), "use of undeclared name '" + spell(N->Name) + "'");
    N->Ty = Type::bits(32);
    return;
  }

  case Expr::Kind::Load: {
    auto *L = cast<LoadExpr>(E);
    Type PtrTy = TargetInfo::nativePointer();
    resolveExpr(L->Addr.get(), &PtrTy, PI);
    if (L->Addr->Ty != PtrTy)
      Diags.error(L->loc(), "load address must have the native data-pointer "
                            "type " +
                                PtrTy.str());
    L->Ty = L->AccessTy;
    return;
  }

  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    resolveExpr(U->Operand.get(), Expected, PI);
    switch (U->Op) {
    case UnOp::Neg:
      U->Ty = U->Operand->Ty;
      return;
    case UnOp::Com:
      if (!U->Operand->Ty.isBits())
        Diags.error(U->loc(), "bitwise complement requires a bits operand");
      U->Ty = U->Operand->Ty;
      return;
    case UnOp::Not:
      if (!U->Operand->Ty.isBits())
        Diags.error(U->loc(), "logical not requires a bits operand");
      U->Ty = Type::bits(32);
      return;
    }
    cmm_unreachable("unknown unary operator");
  }

  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    bool IsCompare = B->Op >= BinOp::Eq;
    const Type *OperandExpect = IsCompare ? nullptr : Expected;
    resolveExpr(B->Lhs.get(), OperandExpect, PI);
    // Let a literal on the left adopt the width of a resolved right side.
    resolveExpr(B->Rhs.get(), &B->Lhs->Ty, PI);
    if (isa<IntLitExpr>(B->Lhs.get()) && !isa<IntLitExpr>(B->Rhs.get()))
      B->Lhs->Ty = B->Rhs->Ty;
    if (B->Lhs->Ty != B->Rhs->Ty)
      Diags.error(B->loc(), "operand types differ: " + B->Lhs->Ty.str() +
                                " vs " + B->Rhs->Ty.str());
    bool BitsOnly = B->Op == BinOp::Mod || B->Op == BinOp::And ||
                    B->Op == BinOp::Or || B->Op == BinOp::Xor ||
                    B->Op == BinOp::Shl || B->Op == BinOp::Shr;
    if (BitsOnly && !B->Lhs->Ty.isBits())
      Diags.error(B->loc(), "operator requires bits operands");
    B->Ty = IsCompare ? Type::bits(32) : B->Lhs->Ty;
    return;
  }

  case Expr::Kind::Prim: {
    auto *P = cast<PrimExpr>(E);
    const std::string &Name = spell(P->Name);
    std::optional<PrimKind> K = lookupPrim(Name);
    if (!K) {
      Diags.error(P->loc(), "unknown primitive '" + Name + "'");
      P->Ty = Type::bits(32);
      return;
    }
    std::vector<Type> ArgTys;
    for (size_t I = 0; I < P->Args.size(); ++I) {
      const Type *ArgExpect = I == 0 ? nullptr : &ArgTys[0];
      resolveExpr(P->Args[I].get(), ArgExpect, PI);
      ArgTys.push_back(P->Args[I]->Ty);
    }
    if (!primOperandsOk(*K, ArgTys.data(),
                        static_cast<unsigned>(ArgTys.size())))
      Diags.error(P->loc(), "bad operands for primitive '" + Name + "'");
    P->Ty = ArgTys.empty() ? Type::bits(32) : primResultType(*K, ArgTys[0]);
    return;
  }

  case Expr::Kind::Sizeof: {
    auto *Sz = cast<SizeofExpr>(E);
    Sz->Ty = Type::bits(32);
    auto VIt = PI.Vars.find(Sz->Name);
    if (VIt != PI.Vars.end()) {
      Sz->SizeInBytes = VIt->second.sizeInBytes();
      return;
    }
    if (PI.Continuations.count(Sz->Name)) {
      // A continuation value is one native data pointer (Section 5.4).
      Sz->SizeInBytes = TargetInfo::pointerBytes();
      return;
    }
    auto GIt = Info.Globals.find(Sz->Name);
    if (GIt != Info.Globals.end()) {
      Sz->SizeInBytes = GIt->second.sizeInBytes();
      return;
    }
    Diags.error(Sz->loc(), "sizeof of unknown name '" + spell(Sz->Name) +
                               "'");
    Sz->SizeInBytes = TargetInfo::pointerBytes();
    return;
  }
  }
  cmm_unreachable("unknown expression kind");
}

} // namespace

SemaInfo cmm::analyze(Module &Mod, DiagnosticEngine &Diags) {
  return SemaImpl(Mod, Diags).run();
}
