//===- syntax/AstPrinter.cpp ----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "syntax/AstPrinter.h"

#include "support/Assert.h"
#include "support/Casting.h"

using namespace cmm;

namespace {

class PrinterImpl {
public:
  explicit PrinterImpl(const Module &Mod) : Mod(&Mod), Names(*Mod.Names) {}
  explicit PrinterImpl(const Interner &Names) : Mod(nullptr), Names(Names) {}

  std::string run();

  void expr(const Expr &E, unsigned ParentPrec) {
    Out += exprStr(E, ParentPrec);
  }

  std::string Out;

private:
  void line(const std::string &Text) {
    Out.append(Indent * 2, ' ');
    Out += Text;
    Out += '\n';
  }
  std::string name(Symbol S) { return Names.spelling(S); }
  void stmts(const std::vector<StmtPtr> &Body);
  void stmt(const Stmt &S);
  std::string exprStr(const Expr &E, unsigned ParentPrec = 0);
  std::string argList(const std::vector<ExprPtr> &Args);
  std::string annots(const Annotations &A);
  std::string quote(const std::string &S);

  const Module *Mod;
  const Interner &Names;
  unsigned Indent = 0;
};

std::string PrinterImpl::quote(const std::string &S) {
  std::string Q = "\"";
  for (char C : S) {
    switch (C) {
    case '\n': Q += "\\n"; break;
    case '\t': Q += "\\t"; break;
    case '\0': Q += "\\0"; break;
    case '\\': Q += "\\\\"; break;
    case '"': Q += "\\\""; break;
    default: Q += C;
    }
  }
  Q += '"';
  return Q;
}

std::string PrinterImpl::run() {
  for (Symbol S : Mod->Exports)
    line("export " + name(S) + ";");
  for (Symbol S : Mod->Imports)
    line("import " + name(S) + ";");
  for (const GlobalDecl &G : Mod->Globals)
    line("global " + G.Ty.str() + " " + name(G.Name) + ";");
  for (const DataDecl &D : Mod->Data) {
    line("data " + name(D.Name) + " {");
    ++Indent;
    for (const DataItem &Item : D.Items) {
      switch (Item.K) {
      case DataItem::Kind::Int:
        line(Item.Ty.str() + " " + std::to_string(Item.IntValue) + ";");
        break;
      case DataItem::Kind::Str:
        line(Item.Ty.str() + " " + quote(Item.StrValue) + ";");
        break;
      case DataItem::Kind::Name:
        line(Item.Ty.str() + " " + name(Item.NameValue) + ";");
        break;
      case DataItem::Kind::Reserve:
        line(Item.Ty.str() + "[" + std::to_string(Item.ReserveCount) + "];");
        break;
      }
    }
    --Indent;
    line("}");
  }
  for (const ProcDecl &P : Mod->Procs) {
    std::string Header = name(P.Name) + "(";
    for (size_t I = 0; I < P.Params.size(); ++I) {
      if (I)
        Header += ", ";
      Header += P.Params[I].Ty.str() + " " + name(P.Params[I].Name);
    }
    Header += ") {";
    line(Header);
    ++Indent;
    stmts(P.Body);
    --Indent;
    line("}");
  }
  return std::move(Out);
}

void PrinterImpl::stmts(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    stmt(*S);
}

std::string PrinterImpl::argList(const std::vector<ExprPtr> &Args) {
  std::string Out;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += exprStr(*Args[I]);
  }
  return Out;
}

std::string PrinterImpl::annots(const Annotations &A) {
  std::string Out;
  auto List = [&](const std::vector<Symbol> &Names, const char *What) {
    if (Names.empty())
      return;
    Out += std::string(" also ") + What + " ";
    for (size_t I = 0; I < Names.size(); ++I) {
      if (I)
        Out += ", ";
      Out += name(Names[I]);
    }
  };
  List(A.CutsTo, "cuts to");
  List(A.UnwindsTo, "unwinds to");
  List(A.ReturnsTo, "returns to");
  if (A.Aborts)
    Out += " also aborts";
  if (!A.Descriptors.empty()) {
    Out += " descriptors ";
    for (size_t I = 0; I < A.Descriptors.size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprStr(*A.Descriptors[I]);
    }
  }
  return Out;
}

void PrinterImpl::stmt(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::VarDecl: {
    const auto &V = *cast<VarDeclStmt>(&S);
    std::string Text = V.DeclTy.str() + " ";
    for (size_t I = 0; I < V.Names.size(); ++I) {
      if (I)
        Text += ", ";
      Text += name(V.Names[I]);
    }
    line(Text + ";");
    return;
  }
  case Stmt::Kind::Assign: {
    const auto &A = *cast<AssignStmt>(&S);
    line(name(A.Target) + " = " + exprStr(*A.Value) + ";");
    return;
  }
  case Stmt::Kind::MemAssign: {
    const auto &M = *cast<MemAssignStmt>(&S);
    line(M.AccessTy.str() + "[" + exprStr(*M.Addr) + "] = " +
         exprStr(*M.Value) + ";");
    return;
  }
  case Stmt::Kind::If: {
    const auto &If = *cast<IfStmt>(&S);
    line("if " + exprStr(*If.Cond) + " {");
    ++Indent;
    stmts(If.Then);
    --Indent;
    if (If.Else.empty()) {
      line("}");
      return;
    }
    line("} else {");
    ++Indent;
    stmts(If.Else);
    --Indent;
    line("}");
    return;
  }
  case Stmt::Kind::Goto:
    line("goto " + name(cast<GotoStmt>(&S)->Target) + ";");
    return;
  case Stmt::Kind::Label:
    line(name(cast<LabelStmt>(&S)->Name) + ":");
    return;
  case Stmt::Kind::Call: {
    const auto &C = *cast<CallStmt>(&S);
    std::string Text;
    for (size_t I = 0; I < C.Results.size(); ++I) {
      if (I)
        Text += ", ";
      Text += name(C.Results[I]);
    }
    if (!C.Results.empty())
      Text += " = ";
    Text += exprStr(*C.Callee) + "(" + argList(C.Args) + ")" +
            annots(C.Annots) + ";";
    line(Text);
    return;
  }
  case Stmt::Kind::Jump: {
    const auto &J = *cast<JumpStmt>(&S);
    line("jump " + exprStr(*J.Callee) + "(" + argList(J.Args) + ");");
    return;
  }
  case Stmt::Kind::Return: {
    const auto &R = *cast<ReturnStmt>(&S);
    std::string Text = "return";
    if (R.AltCount != 0 || R.ContIndex != 0)
      Text += " <" + std::to_string(R.ContIndex) + "/" +
              std::to_string(R.AltCount) + ">";
    if (!R.Values.empty())
      Text += " (" + argList(R.Values) + ")";
    line(Text + ";");
    return;
  }
  case Stmt::Kind::CutTo: {
    const auto &C = *cast<CutToStmt>(&S);
    std::string Text =
        "cut to " + exprStr(*C.Cont) + "(" + argList(C.Args) + ")";
    if (!C.AlsoCutsTo.empty()) {
      Text += " also cuts to ";
      for (size_t I = 0; I < C.AlsoCutsTo.size(); ++I) {
        if (I)
          Text += ", ";
        Text += name(C.AlsoCutsTo[I]);
      }
    }
    line(Text + ";");
    return;
  }
  case Stmt::Kind::Continuation: {
    const auto &C = *cast<ContinuationStmt>(&S);
    std::string Text = "continuation " + name(C.Name) + "(";
    for (size_t I = 0; I < C.Params.size(); ++I) {
      if (I)
        Text += ", ";
      Text += name(C.Params[I]);
    }
    line(Text + "):");
    return;
  }
  }
  cmm_unreachable("unknown statement kind");
}

/// Precedence table mirroring the parser's.
unsigned opPrec(BinOp Op) {
  switch (Op) {
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
    return 10;
  case BinOp::Add:
  case BinOp::Sub:
    return 9;
  case BinOp::Shl:
  case BinOp::Shr:
    return 8;
  case BinOp::LtS:
  case BinOp::LeS:
  case BinOp::GtS:
  case BinOp::GeS:
    return 7;
  case BinOp::Eq:
  case BinOp::Ne:
    return 6;
  case BinOp::And:
    return 5;
  case BinOp::Xor:
    return 4;
  case BinOp::Or:
    return 3;
  }
  cmm_unreachable("unknown binary operator");
}

const char *opSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::Div: return "/";
  case BinOp::Mod: return "%";
  case BinOp::And: return "&";
  case BinOp::Or: return "|";
  case BinOp::Xor: return "^";
  case BinOp::Shl: return "<<";
  case BinOp::Shr: return ">>";
  case BinOp::Eq: return "==";
  case BinOp::Ne: return "!=";
  case BinOp::LtS: return "<";
  case BinOp::LeS: return "<=";
  case BinOp::GtS: return ">";
  case BinOp::GeS: return ">=";
  }
  cmm_unreachable("unknown binary operator");
}

std::string PrinterImpl::exprStr(const Expr &E, unsigned ParentPrec) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(&E)->Value);
  case Expr::Kind::FloatLit: {
    std::string S = std::to_string(cast<FloatLitExpr>(&E)->Value);
    return S;
  }
  case Expr::Kind::StrLit:
    return quote(cast<StrLitExpr>(&E)->Value);
  case Expr::Kind::Name:
    return name(cast<NameExpr>(&E)->Name);
  case Expr::Kind::Load: {
    const auto &L = *cast<LoadExpr>(&E);
    return L.AccessTy.str() + "[" + exprStr(*L.Addr) + "]";
  }
  case Expr::Kind::Unary: {
    const auto &U = *cast<UnaryExpr>(&E);
    const char *Op = U.Op == UnOp::Neg ? "-" : U.Op == UnOp::Com ? "~" : "!";
    return std::string(Op) + exprStr(*U.Operand, 11);
  }
  case Expr::Kind::Binary: {
    const auto &B = *cast<BinaryExpr>(&E);
    unsigned Prec = opPrec(B.Op);
    std::string S = exprStr(*B.Lhs, Prec) + " " + opSpelling(B.Op) + " " +
                    exprStr(*B.Rhs, Prec + 1);
    if (Prec < ParentPrec)
      return "(" + S + ")";
    return S;
  }
  case Expr::Kind::Prim: {
    const auto &P = *cast<PrimExpr>(&E);
    return name(P.Name) + "(" + argList(P.Args) + ")";
  }
  case Expr::Kind::Sizeof:
    return "sizeof(" + name(cast<SizeofExpr>(&E)->Name) + ")";
  }
  cmm_unreachable("unknown expression kind");
}

} // namespace

std::string cmm::printModule(const Module &Mod) {
  return PrinterImpl(Mod).run();
}

std::string cmm::printExpr(const Expr &E, const Interner &Names) {
  PrinterImpl P(Names);
  P.expr(E, 0);
  return std::move(P.Out);
}
