//===- syntax/Parser.h - C-- parser -----------------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for C--. Produces a Module; callers should run
/// Sema afterwards to resolve names and check the annotation rules.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_PARSER_H
#define CMM_SYNTAX_PARSER_H

#include "support/Diagnostics.h"
#include "syntax/Ast.h"
#include "syntax/Lexer.h"

#include <optional>

namespace cmm {

/// Parses one C-- compilation unit.
class Parser {
public:
  /// \p Names optionally supplies a shared interner so several modules of
  /// one program agree on Symbol identities; by default the module gets a
  /// fresh interner.
  Parser(std::string_view Source, DiagnosticEngine &Diags,
         std::shared_ptr<Interner> Names = nullptr)
      : Lex(Source, Diags), Diags(Diags) {
    if (Names)
      Mod.Names = std::move(Names);
    Buf[0] = Lex.next();
    Buf[1] = Lex.next();
  }

  /// Parses the whole buffer. On syntax errors the returned module is
  /// partial and Diags has errors.
  Module parseModule();

private:
  const Token &tok(unsigned Ahead = 0) const { return Buf[Ahead]; }
  Token consume();
  bool at(TokKind K) const { return tok().Kind == K; }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void syncToStmtBoundary();
  Symbol intern(const std::string &Text) { return Mod.Names->intern(Text); }

  std::optional<Type> parseTypeOpt();
  bool atType() const;

  // Top level.
  void parseTopDecl();
  void parseExportImport(bool IsExport);
  void parseGlobal();
  void parseData();
  void parseProc(Symbol Name, SourceLoc Loc);

  // Statements.
  std::vector<StmtPtr> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseIf(SourceLoc Loc);
  StmtPtr parseReturn(SourceLoc Loc);
  StmtPtr parseJump(SourceLoc Loc);
  StmtPtr parseCutTo(SourceLoc Loc);
  StmtPtr parseContinuation(SourceLoc Loc);
  StmtPtr parseIdentStmt();
  StmtPtr parseCallTail(SourceLoc Loc, std::vector<Symbol> Results,
                        ExprPtr Callee);
  Annotations parseAnnotations();
  std::vector<Symbol> parseNameList(const char *Context);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(unsigned MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Buf[2];
  Module Mod;
};

} // namespace cmm

#endif // CMM_SYNTAX_PARSER_H
