//===- syntax/Lexer.cpp ---------------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "syntax/Lexer.h"

#include "support/Assert.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace cmm;

const char *cmm::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of input";
  case TokKind::Ident: return "identifier";
  case TokKind::PrimName: return "primitive name";
  case TokKind::IntLit: return "integer literal";
  case TokKind::FloatLit: return "float literal";
  case TokKind::StrLit: return "string literal";
  case TokKind::KwExport: return "'export'";
  case TokKind::KwImport: return "'import'";
  case TokKind::KwGlobal: return "'global'";
  case TokKind::KwRegister: return "'register'";
  case TokKind::KwData: return "'data'";
  case TokKind::KwBits8: return "'bits8'";
  case TokKind::KwBits16: return "'bits16'";
  case TokKind::KwBits32: return "'bits32'";
  case TokKind::KwBits64: return "'bits64'";
  case TokKind::KwFloat32: return "'float32'";
  case TokKind::KwFloat64: return "'float64'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwGoto: return "'goto'";
  case TokKind::KwReturn: return "'return'";
  case TokKind::KwJump: return "'jump'";
  case TokKind::KwCut: return "'cut'";
  case TokKind::KwTo: return "'to'";
  case TokKind::KwContinuation: return "'continuation'";
  case TokKind::KwAlso: return "'also'";
  case TokKind::KwCuts: return "'cuts'";
  case TokKind::KwUnwinds: return "'unwinds'";
  case TokKind::KwReturns: return "'returns'";
  case TokKind::KwAborts: return "'aborts'";
  case TokKind::KwDescriptors: return "'descriptors'";
  case TokKind::KwSizeof: return "'sizeof'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Comma: return "','";
  case TokKind::Semi: return "';'";
  case TokKind::Colon: return "':'";
  case TokKind::Assign: return "'='";
  case TokKind::EqEq: return "'=='";
  case TokKind::NotEq: return "'!='";
  case TokKind::Less: return "'<'";
  case TokKind::LessEq: return "'<='";
  case TokKind::Greater: return "'>'";
  case TokKind::GreaterEq: return "'>='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Amp: return "'&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::Caret: return "'^'";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::Tilde: return "'~'";
  case TokKind::Bang: return "'!'";
  }
  return "token";
}

static TokKind keywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"export", TokKind::KwExport},
      {"import", TokKind::KwImport},
      {"global", TokKind::KwGlobal},
      {"register", TokKind::KwRegister},
      {"data", TokKind::KwData},
      {"bits8", TokKind::KwBits8},
      {"bits16", TokKind::KwBits16},
      {"bits32", TokKind::KwBits32},
      {"bits64", TokKind::KwBits64},
      {"float32", TokKind::KwFloat32},
      {"float64", TokKind::KwFloat64},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"goto", TokKind::KwGoto},
      {"return", TokKind::KwReturn},
      {"jump", TokKind::KwJump},
      {"cut", TokKind::KwCut},
      {"to", TokKind::KwTo},
      {"continuation", TokKind::KwContinuation},
      {"also", TokKind::KwAlso},
      {"cuts", TokKind::KwCuts},
      {"unwinds", TokKind::KwUnwinds},
      {"returns", TokKind::KwReturns},
      {"aborts", TokKind::KwAborts},
      {"descriptors", TokKind::KwDescriptors},
      {"sizeof", TokKind::KwSizeof},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokKind::Ident : It->second;
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advance past end");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::make(TokKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentOrKeyword() {
  SourceLoc Loc = here();
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  Token T = make(keywordKind(Text), Loc);
  if (T.Kind == TokKind::Ident)
    T.Text = std::move(Text);
  return T;
}

Token Lexer::lexPrimName() {
  SourceLoc Loc = here();
  std::string Text;
  Text += advance(); // first '%'
  if (peek() == '%')
    Text += advance(); // "%%" slow-but-solid spelling
  if (!std::isalpha(static_cast<unsigned char>(peek()))) {
    // A lone '%' is the modulus operator.
    Token T = make(TokKind::Percent, Loc);
    return T;
  }
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  Token T = make(TokKind::PrimName, Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber() {
  SourceLoc Loc = here();
  std::string Text;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Text += advance();
    Text += advance();
    IsHex = true;
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      Text += advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      Text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
      if (peek() == 'e' || peek() == 'E') {
        Text += advance();
        if (peek() == '+' || peek() == '-')
          Text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text += advance();
      }
      Token T = make(TokKind::FloatLit, Loc);
      T.FloatValue = std::strtod(Text.c_str(), nullptr);
      return T;
    }
  }
  Token T = make(TokKind::IntLit, Loc);
  T.IntValue = std::strtoull(Text.c_str(), nullptr, IsHex ? 16 : 10);
  return T;
}

Token Lexer::lexString() {
  SourceLoc Loc = here();
  advance(); // opening quote
  std::string Text;
  while (Pos < Source.size() && peek() != '"') {
    char C = advance();
    if (C == '\\' && Pos < Source.size()) {
      char E = advance();
      switch (E) {
      case 'n': Text += '\n'; break;
      case 't': Text += '\t'; break;
      case '0': Text += '\0'; break;
      case '\\': Text += '\\'; break;
      case '"': Text += '"'; break;
      default:
        Diags.error(here(), std::string("unknown escape '\\") + E + "'");
      }
      continue;
    }
    Text += C;
  }
  if (Pos >= Source.size()) {
    Diags.error(Loc, "unterminated string literal");
  } else {
    advance(); // closing quote
  }
  Token T = make(TokKind::StrLit, Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = here();
  if (Pos >= Source.size())
    return make(TokKind::Eof, Loc);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '%')
    return lexPrimName();
  if (C == '"')
    return lexString();

  advance();
  switch (C) {
  case '{': return make(TokKind::LBrace, Loc);
  case '}': return make(TokKind::RBrace, Loc);
  case '(': return make(TokKind::LParen, Loc);
  case ')': return make(TokKind::RParen, Loc);
  case '[': return make(TokKind::LBracket, Loc);
  case ']': return make(TokKind::RBracket, Loc);
  case ',': return make(TokKind::Comma, Loc);
  case ';': return make(TokKind::Semi, Loc);
  case ':': return make(TokKind::Colon, Loc);
  case '+': return make(TokKind::Plus, Loc);
  case '-': return make(TokKind::Minus, Loc);
  case '*': return make(TokKind::Star, Loc);
  case '/': return make(TokKind::Slash, Loc);
  case '&': return make(TokKind::Amp, Loc);
  case '|': return make(TokKind::Pipe, Loc);
  case '^': return make(TokKind::Caret, Loc);
  case '~': return make(TokKind::Tilde, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return make(TokKind::EqEq, Loc);
    }
    return make(TokKind::Assign, Loc);
  case '!':
    if (peek() == '=') {
      advance();
      return make(TokKind::NotEq, Loc);
    }
    return make(TokKind::Bang, Loc);
  case '<':
    if (peek() == '<') {
      advance();
      return make(TokKind::Shl, Loc);
    }
    if (peek() == '=') {
      advance();
      return make(TokKind::LessEq, Loc);
    }
    return make(TokKind::Less, Loc);
  case '>':
    if (peek() == '>') {
      advance();
      return make(TokKind::Shr, Loc);
    }
    if (peek() == '=') {
      advance();
      return make(TokKind::GreaterEq, Loc);
    }
    return make(TokKind::Greater, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}
