//===- syntax/AstPrinter.h - C-- pretty printer -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Module back to concrete C-- syntax. print(parse(print(M)))
/// equals print(M); the property tests rely on this round trip.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SYNTAX_ASTPRINTER_H
#define CMM_SYNTAX_ASTPRINTER_H

#include "syntax/Ast.h"

#include <string>

namespace cmm {

/// Pretty-prints \p Mod as parseable C-- source.
std::string printModule(const Module &Mod);

/// Pretty-prints one expression (for diagnostics and tests). \p Names is
/// the interner that owns the names appearing in \p E.
std::string printExpr(const Expr &E, const Interner &Names);

} // namespace cmm

#endif // CMM_SYNTAX_ASTPRINTER_H
