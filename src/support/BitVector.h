//===- support/BitVector.h - Dense bit vectors ------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size dense bit vector for dataflow sets.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_BITVECTOR_H
#define CMM_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace cmm {

/// Dense bit set with the operations dataflow solvers need.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t Size) : NumBits(Size), Words((Size + 63) / 64) {}

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }
  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other. Returns true when any bit changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  /// this &= Other.
  void intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= Other.Words[I];
  }

  friend bool operator==(const BitVector &X, const BitVector &Y) {
    return X.NumBits == Y.NumBits && X.Words == Y.Words;
  }

  /// Calls \p F(index) for every set bit.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned B = static_cast<unsigned>(__builtin_ctzll(Bits));
        F(W * 64 + B);
        Bits &= Bits - 1;
      }
    }
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace cmm

#endif // CMM_SUPPORT_BITVECTOR_H
