//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Front ends report errors here instead of
/// aborting; tools decide how to render them. Library code never prints to
/// stderr directly except for internal-invariant violations.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_DIAGNOSTICS_H
#define CMM_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace cmm {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "loc: error: message" in the compiler-diagnostic style
  /// required by the coding standard (lowercase first word, no final period).
  std::string str() const;
};

/// Accumulates diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; convenient for test assertions
  /// and for tools that just dump everything.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace cmm

#endif // CMM_SUPPORT_DIAGNOSTICS_H
