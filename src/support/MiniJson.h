//===- support/MiniJson.h - Minimal JSON reader -----------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser for the read side of cmmex's own
/// telemetry formats — metrics snapshots, stats JSON, Chrome traces. The
/// write side (obs/Json.h) is deliberately write-only; this is its
/// counterpart for tools/cmmstat.cpp and the tests that assert emitted JSON
/// is well-formed.
///
/// Scope is deliberately narrow: full JSON syntax, values held in a plain
/// tree of owning nodes, numbers kept as double (53-bit integer precision —
/// fine for counters in practice; telemetry consumers tolerate it). No
/// exceptions (the repo builds -fno-exceptions): parse() returns nullopt on
/// malformed input, with a position + message for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_MINIJSON_H
#define CMM_SUPPORT_MINIJSON_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cmm {

/// One JSON value. Object members keep sorted (std::map) order, which is
/// also the order obs/Json emits, so round-trips are stable.
class JsonValue {
public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  uint64_t asU64() const { return Num < 0 ? 0 : uint64_t(Num); }
  const std::string &str() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::map<std::string, JsonValue> &object() const { return Obj; }

  /// Member lookup; null when absent or not an object.
  const JsonValue *get(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(std::string(Key));
    return It == Obj.end() ? nullptr : &It->second;
  }
  /// get(Key)->number() with a default for absent/mistyped members.
  double numberAt(std::string_view Key, double Default = 0) const {
    const JsonValue *V = get(Key);
    return V && V->isNumber() ? V->number() : Default;
  }
  /// get(Key)->str() with a default.
  std::string strAt(std::string_view Key, std::string Default = "") const {
    const JsonValue *V = get(Key);
    return V && V->isString() ? V->str() : std::move(Default);
  }

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// non-whitespace is an error). Returns nullopt on malformed input; when
/// \p Err is non-null it receives "offset N: message".
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Err = nullptr);

} // namespace cmm

#endif // CMM_SUPPORT_MINIJSON_H
