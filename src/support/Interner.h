//===- support/Interner.h - String interning --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers. Symbols are small integer handles into a per-module
/// string table, so name comparisons during translation and interpretation
/// are integer compares.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_INTERNER_H
#define CMM_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cmm {

/// An interned identifier. Value 0 is the invalid symbol.
struct Symbol {
  uint32_t Id = 0;

  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != 0; }
  explicit operator bool() const { return isValid(); }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }
};

/// Owns the interned strings and hands out Symbols.
class Interner {
public:
  Interner() { Strings.emplace_back(); } // slot 0 = invalid

  /// Returns the symbol for \p Text, interning it on first use.
  Symbol intern(std::string_view Text);

  /// Returns the symbol for \p Text if already interned, else the invalid
  /// symbol. Never allocates.
  Symbol lookup(std::string_view Text) const;

  /// The spelling of \p S. \p S must be valid and from this interner.
  const std::string &spelling(Symbol S) const;

  size_t size() const { return Strings.size() - 1; }

private:
  // Deque: element addresses are stable, so the string_view keys in Index
  // (which point into the stored strings) never dangle.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace cmm

/// Hashing so Symbol works as a key in unordered containers.
template <> struct std::hash<cmm::Symbol> {
  size_t operator()(cmm::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.Id);
  }
};

#endif // CMM_SUPPORT_INTERNER_H
