//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace cmm;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "diagnostic";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += kindName(Kind);
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
