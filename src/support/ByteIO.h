//===- support/ByteIO.h - Endian-fixed binary reader/writer -----*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary encoding primitives for the artifact serializer
/// (docs/ENGINE.md § "Persistent cache"). Every multi-byte value is written
/// byte-at-a-time LSB-first, so the encoded form is identical on every host;
/// strings and blobs are length-prefixed.
///
/// ByteReader has sticky-failure semantics (the tree builds with
/// -fno-exceptions): any out-of-bounds read or failed expectation trips a
/// persistent failure bit, every subsequent read returns a zero value, and
/// callers check ok() once at a convenient boundary instead of after every
/// field. Deserializers treat !ok() as "corrupt input, fall back".
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_BYTEIO_H
#define CMM_SUPPORT_BYTEIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cmm {

/// Appends little-endian fields to a growing byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) {
    u8(uint8_t(V));
    u8(uint8_t(V >> 8));
  }
  void u32(uint32_t V) {
    u16(uint16_t(V));
    u16(uint16_t(V >> 16));
  }
  void u64(uint64_t V) {
    u32(uint32_t(V));
    u32(uint32_t(V >> 32));
  }
  /// Doubles travel as their IEEE-754 bit pattern (exact round trip).
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void str(std::string_view S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void bytes(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Consumes little-endian fields from a byte buffer; sticky failure.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}

  uint8_t u8() {
    if (Pos + 1 > Size)
      return fail(), 0;
    return Data[Pos++];
  }
  uint16_t u16() {
    uint16_t Lo = u8(), Hi = u8();
    return uint16_t(Lo | (Hi << 8));
  }
  uint32_t u32() {
    uint32_t Lo = u16(), Hi = u16();
    return Lo | (Hi << 16);
  }
  uint64_t u64() {
    uint64_t Lo = u32(), Hi = u32();
    return Lo | (Hi << 32);
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof V);
    return V;
  }
  std::string str() {
    uint64_t N = u64();
    if (Pos + N > Size || N > Size) // second test guards overflow
      return fail(), std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), size_t(N));
    Pos += size_t(N);
    return S;
  }
  /// Reads exactly \p N raw bytes into \p Out (cleared on failure).
  void bytes(std::vector<uint8_t> &Out, size_t N) {
    if (Pos + N > Size || N > Size) {
      fail();
      Out.clear();
      return;
    }
    Out.assign(Data + Pos, Data + Pos + N);
    Pos += N;
  }
  /// Fails unless the next bytes are exactly \p Expect (and consumes them).
  void expect(std::string_view Expect) {
    if (Pos + Expect.size() > Size ||
        std::memcmp(Data + Pos, Expect.data(), Expect.size()) != 0) {
      fail();
      return;
    }
    Pos += Expect.size();
  }
  /// A u64 count about to size a container; fails (and returns 0) when it
  /// cannot possibly fit in the remaining input, so corrupt counts cannot
  /// drive giant allocations.
  size_t count(size_t MinBytesPer = 1) {
    uint64_t N = u64();
    if (!Ok || N > (Size - Pos) / (MinBytesPer ? MinBytesPer : 1))
      return fail(), 0;
    return size_t(N);
  }

  bool ok() const { return Ok; }
  void fail() { Ok = false; }
  size_t remaining() const { return Ok ? Size - Pos : 0; }
  size_t position() const { return Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
};

} // namespace cmm

#endif // CMM_SUPPORT_BYTEIO_H
