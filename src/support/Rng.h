//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic PRNG (splitmix64) for property tests and workload
/// generators. Deterministic seeding keeps test failures reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_RNG_H
#define CMM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace cmm {

/// splitmix64 generator. Not for cryptography; for reproducible workloads.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(uint64_t(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace cmm

#endif // CMM_SUPPORT_RNG_H
