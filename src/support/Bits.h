//===- support/Bits.h - N-bit word arithmetic -------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arithmetic on the C-- bitsN value types (Section 3.1 of the paper). All
/// operations wrap modulo 2^N, matching machine words; signed variants
/// reinterpret the two's-complement pattern.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_BITS_H
#define CMM_SUPPORT_BITS_H

#include <cassert>
#include <cstdint>

namespace cmm {

/// Masks \p V to the low \p Width bits. \p Width must be in [1, 64].
inline uint64_t truncateToWidth(uint64_t V, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "unsupported bits width");
  if (Width == 64)
    return V;
  return V & ((uint64_t(1) << Width) - 1);
}

/// Sign-extends the low \p Width bits of \p V to a signed 64-bit value.
inline int64_t signExtend(uint64_t V, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "unsupported bits width");
  if (Width == 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  uint64_t Masked = truncateToWidth(V, Width);
  return static_cast<int64_t>((Masked ^ SignBit) - SignBit);
}

/// True iff the low \p Width bits of \p V are all zero.
inline bool isZeroAtWidth(uint64_t V, unsigned Width) {
  return truncateToWidth(V, Width) == 0;
}

/// Signed minimum value (bit pattern) at \p Width, e.g. 0x80000000 for 32.
inline uint64_t signedMin(unsigned Width) {
  return uint64_t(1) << (Width - 1);
}

} // namespace cmm

#endif // CMM_SUPPORT_BITS_H
