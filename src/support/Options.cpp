//===- support/Options.cpp - Shared CLI flag parsing ----------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"

#include <cstdlib>
#include <optional>
#include <string_view>

namespace cmm {
namespace {

/// Matches Argv[I] against \p Flag, accepting both "--flag value" and
/// "--flag=value". Returns the value (advancing I past a separate one), or
/// nullopt if Argv[I] is not this flag. Sets \p Err on a missing value.
std::optional<std::string_view> takeValue(std::string_view Flag, int &I,
                                          int Argc, char **Argv,
                                          std::string &Err) {
  std::string_view Arg = Argv[I];
  if (Arg == Flag) {
    if (I + 1 >= Argc) {
      Err = std::string(Flag) + " requires a value";
      return std::nullopt;
    }
    return std::string_view(Argv[++I]);
  }
  if (Arg.size() > Flag.size() + 1 && Arg.substr(0, Flag.size()) == Flag &&
      Arg[Flag.size()] == '=')
    return Arg.substr(Flag.size() + 1);
  return std::nullopt;
}

bool parseUnsigned(std::string_view Flag, std::string_view Text, uint64_t &Out,
                   std::string &Err) {
  if (Text.empty()) {
    Err = std::string(Flag) + " requires a number";
    return false;
  }
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9') {
      Err = std::string(Flag) + ": expected a non-negative integer, got '" +
            std::string(Text) + "'";
      return false;
    }
    V = V * 10 + unsigned(C - '0');
  }
  Out = V;
  return true;
}

} // namespace

FlagParse parseCommonFlag(CommonOptions &O, unsigned Groups, int &I, int Argc,
                          char **Argv, std::string &Err) {
  std::string_view Arg = Argv[I];
  Err.clear();

  auto value = [&](std::string_view Flag) {
    return takeValue(Flag, I, Argc, Argv, Err);
  };
  // takeValue's nullopt is ambiguous between "not this flag" and "missing
  // value"; Err distinguishes.
  auto outcome = [&](std::optional<std::string_view> V, std::string &Into) {
    if (!V)
      return Err.empty() ? FlagParse::NotMine : FlagParse::Error;
    Into.assign(*V);
    return FlagParse::Consumed;
  };

  if (Groups & FG_Backend) {
    if (auto R = outcome(value("--backend"), O.Backend); R != FlagParse::NotMine)
      return R;
  }

  if (Groups & FG_Trace) {
    if (auto R = outcome(value("--trace"), O.TraceFile); R != FlagParse::NotMine)
      return R;
    if (auto R = outcome(value("--trace-format"), O.TraceFormat);
        R != FlagParse::NotMine)
      return R;
    if (Arg == "--trace-steps") {
      O.TraceSteps = true;
      return FlagParse::Consumed;
    }
    if (auto V = value("--trace-ring")) {
      uint64_t N = 0;
      if (!parseUnsigned("--trace-ring", *V, N, Err))
        return FlagParse::Error;
      O.TraceRing = size_t(N);
      return FlagParse::Consumed;
    } else if (!Err.empty()) {
      return FlagParse::Error;
    }
  }

  if (Groups & FG_Profile) {
    if (Arg == "--profile") {
      O.Profile = true;
      return FlagParse::Consumed;
    }
  }

  if (Groups & FG_Stats) {
    if (Arg == "--stats") {
      O.ShowStats = true;
      return FlagParse::Consumed;
    }
    if (auto R = outcome(value("--stats-json"), O.StatsJsonFile);
        R != FlagParse::NotMine)
      return R;
    if (auto R = outcome(value("--metrics-json"), O.MetricsJsonFile);
        R != FlagParse::NotMine)
      return R;
  }

  if (Groups & FG_Opt) {
    if (Arg == "--optimize" || Arg == "-O") {
      O.Optimize = true;
      return FlagParse::Consumed;
    }
    if (Arg == "--opt-stats") {
      O.OptStats = true;
      return FlagParse::Consumed;
    }
  }

  if (Groups & FG_Cache) {
    if (auto R = outcome(value("--cache-dir"), O.CacheDir);
        R != FlagParse::NotMine)
      return R;
  }

  if (Groups & FG_Threads) {
    if (auto V = value("--threads")) {
      uint64_t N = 0;
      if (!parseUnsigned("--threads", *V, N, Err))
        return FlagParse::Error;
      O.Threads = unsigned(N);
      return FlagParse::Consumed;
    } else if (!Err.empty()) {
      return FlagParse::Error;
    }
  }

  return FlagParse::NotMine;
}

bool finalizeCommonOptions(const CommonOptions &O, unsigned Groups,
                           std::string &Err) {
  if ((Groups & FG_Backend) && O.Backend != "walk" && O.Backend != "vm" &&
      O.Backend != "threaded") {
    Err = "unknown backend '" + O.Backend +
          "' (expected walk, vm, or threaded)";
    return false;
  }
  if ((Groups & FG_Trace) && O.TraceFormat != "jsonl" &&
      O.TraceFormat != "chrome") {
    Err = "unknown trace format '" + O.TraceFormat +
          "' (expected jsonl or chrome)";
    return false;
  }
  return true;
}

std::string commonFlagsHelp(unsigned Groups) {
  std::string H;
  if (Groups & FG_Backend)
    H += "  --backend walk|vm|threaded  executor backend (default walk)\n";
  if (Groups & FG_Opt) {
    H += "  --optimize, -O        run the optimization pipeline\n";
    H += "  --opt-stats           print per-pass rewrite counts\n";
  }
  if (Groups & FG_Trace) {
    H += "  --trace FILE          write a machine trace (\"-\" = stdout)\n";
    H += "  --trace-format F      jsonl (default) or chrome\n";
    H += "  --trace-steps         include per-step events in the trace\n";
    H += "  --trace-ring N        keep only the last N events\n";
  }
  if (Groups & FG_Profile)
    H += "  --profile             per-call-site profile on stderr\n";
  if (Groups & FG_Stats) {
    H += "  --stats               print machine statistics\n";
    H += "  --stats-json FILE     machine statistics as JSON (\"-\" = stdout)\n";
    H += "  --metrics-json FILE   engine metrics snapshot as JSON "
         "(\"-\" = stdout)\n";
  }
  if (Groups & FG_Cache)
    H += "  --cache-dir DIR       persistent artifact cache directory\n";
  if (Groups & FG_Threads)
    H += "  --threads N           worker threads (default: hardware)\n";
  return H;
}

} // namespace cmm
