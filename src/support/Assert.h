//===- support/Assert.h - Internal-error reporting --------------*- C++ -*-===//
//
// Part of cmmex, a reproduction of Ramsey & Peyton Jones, "A single
// intermediate language that supports multiple implementations of
// exceptions" (PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers. The library is built with -fno-exceptions, so internal
/// invariant violations abort via these macros rather than throwing.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_ASSERT_H
#define CMM_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached if the program
/// invariants hold. Always aborts, even in release builds.
#define cmm_unreachable(Msg)                                                   \
  do {                                                                         \
    std::fprintf(stderr, "cmmex: unreachable at %s:%d: %s\n", __FILE__,        \
                 __LINE__, Msg);                                               \
    std::abort();                                                              \
  } while (false)

#endif // CMM_SUPPORT_ASSERT_H
