//===- support/Interner.cpp -----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include "support/Assert.h"

using namespace cmm;

Symbol Interner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return Symbol(It->second);
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.emplace_back(Text);
  Index.emplace(std::string_view(Strings.back()), Id);
  return Symbol(Id);
}

Symbol Interner::lookup(std::string_view Text) const {
  auto It = Index.find(Text);
  if (It == Index.end())
    return Symbol();
  return Symbol(It->second);
}

const std::string &Interner::spelling(Symbol S) const {
  assert(S.isValid() && S.Id < Strings.size() && "invalid symbol");
  return Strings[S.Id];
}
