//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations used by the C-- and Mini-Modula-3 front ends.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_SOURCELOC_H
#define CMM_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace cmm {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed location (line 0) means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  /// Renders as "line:col", or "<unknown>" for invalid locations.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace cmm

#endif // CMM_SUPPORT_SOURCELOC_H
