//===- support/Options.h - Shared CLI flag parsing --------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags every cmmex tool shares — backend selection, tracing,
/// profiling, stats JSON, optimizer switches, worker threads — parsed in
/// exactly one place so cmmi, cmmdiff, and any future tool cannot drift in
/// spelling, defaults, or validation. A tool opts into the groups it
/// supports, loops its argv through parseCommonFlag, handles NotMine flags
/// itself, and calls finalizeCommonOptions once at the end.
///
///   CommonOptions Common;
///   for (int I = 1; I < Argc; ++I) {
///     std::string Err;
///     switch (parseCommonFlag(Common, FG_All, I, Argc, Argv, Err)) {
///     case FlagParse::Consumed: continue;
///     case FlagParse::Error:    die(Err);
///     case FlagParse::NotMine:  /* tool-specific flags */ break;
///     }
///     ...
///   }
///
/// Both `--flag value` and `--flag=value` spellings are accepted for every
/// value-taking flag.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_OPTIONS_H
#define CMM_SUPPORT_OPTIONS_H

#include <cstddef>
#include <string>

namespace cmm {

/// Values of the shared flags, pre-validation defaults included. Backend
/// and trace format stay strings here (support sits below sem/engine);
/// engine::parseBackend converts after finalizeCommonOptions validated.
struct CommonOptions {
  std::string Backend = "walk";      ///< --backend walk|vm
  std::string TraceFile;             ///< --trace F ("-" = stdout)
  std::string TraceFormat = "jsonl"; ///< --trace-format jsonl|chrome
  bool TraceSteps = false;           ///< --trace-steps
  size_t TraceRing = 0;              ///< --trace-ring N
  bool Profile = false;              ///< --profile
  std::string StatsJsonFile;         ///< --stats-json F ("-" = stdout)
  std::string MetricsJsonFile;       ///< --metrics-json F ("-" = stdout)
  bool ShowStats = false;            ///< --stats
  bool Optimize = false;             ///< --optimize
  bool OptStats = false;             ///< --opt-stats
  unsigned Threads = 0;              ///< --threads N (0 = hardware)
  std::string CacheDir;              ///< --cache-dir D (persistent artifacts)
};

/// Flag groups a tool opts into (bitmask).
enum CommonFlagGroup : unsigned {
  FG_Backend = 1u << 0, ///< --backend
  FG_Trace = 1u << 1,   ///< --trace, --trace-format, --trace-steps, --trace-ring
  FG_Profile = 1u << 2, ///< --profile
  FG_Stats = 1u << 3,   ///< --stats, --stats-json, --metrics-json
  FG_Opt = 1u << 4,     ///< --optimize, --opt-stats
  FG_Threads = 1u << 5, ///< --threads
  FG_Cache = 1u << 6,   ///< --cache-dir
  FG_All = (1u << 7) - 1,
};

enum class FlagParse : unsigned char {
  NotMine,  ///< Argv[I] is not a shared flag (or not in \p Groups)
  Consumed, ///< parsed into \p O; I advanced past any value
  Error,    ///< it was a shared flag with a bad/missing value; \p Err set
};

/// Tries Argv[I] against every shared flag enabled in \p Groups.
FlagParse parseCommonFlag(CommonOptions &O, unsigned Groups, int &I, int Argc,
                          char **Argv, std::string &Err);

/// Cross-flag validation (backend and trace-format spellings). Call once
/// after the loop; returns false with \p Err set on invalid combinations.
bool finalizeCommonOptions(const CommonOptions &O, unsigned Groups,
                           std::string &Err);

/// Usage text for the enabled groups, one "  --flag ..." line each, for
/// embedding in a tool's usage() block.
std::string commonFlagsHelp(unsigned Groups);

} // namespace cmm

#endif // CMM_SUPPORT_OPTIONS_H
