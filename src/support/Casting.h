//===- support/Casting.h - isa/cast/dyn_cast --------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. The project is built with -fno-rtti;
/// class hierarchies carry a Kind tag and a static classof, and these
/// templates provide checked downcasts.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_SUPPORT_CASTING_H
#define CMM_SUPPORT_CASTING_H

#include <cassert>

namespace cmm {

/// True iff \p V points to an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> to incompatible kind");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible kind");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace cmm

#endif // CMM_SUPPORT_CASTING_H
