//===- support/MiniJson.cpp -----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "support/MiniJson.h"

#include <cstdlib>

using namespace cmm;

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue V;
    if (!value(V))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return V;
  }

private:
  void fail(const char *Msg) {
    if (Err && Err->empty())
      *Err = "offset " + std::to_string(Pos) + ": " + Msg;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool lit(std::string_view S) {
    if (Text.substr(Pos, S.size()) != S)
      return false;
    Pos += S.size();
    return true;
  }

  bool value(JsonValue &V) {
    // Nesting is bounded so hostile input cannot blow the C++ stack (the
    // parser is recursive).
    if (++Depth > 200) {
      fail("nesting too deep");
      return false;
    }
    bool Ok = valueInner(V);
    --Depth;
    return Ok;
  }

  bool valueInner(JsonValue &V) {
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (Text[Pos]) {
    case '{':
      return object(V);
    case '[':
      return array(V);
    case '"':
      V.K = JsonValue::Kind::String;
      return string(V.Str);
    case 't':
      if (!lit("true")) {
        fail("bad literal");
        return false;
      }
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return true;
    case 'f':
      if (!lit("false")) {
        fail("bad literal");
        return false;
      }
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return true;
    case 'n':
      if (!lit("null")) {
        fail("bad literal");
        return false;
      }
      V.K = JsonValue::Kind::Null;
      return true;
    default:
      return number(V);
    }
  }

  bool object(JsonValue &V) {
    V.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected object key");
        return false;
      }
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        fail("expected ':'");
        return false;
      }
      ++Pos;
      skipWs();
      JsonValue Member;
      if (!value(Member))
        return false;
      V.Obj.insert_or_assign(std::move(Key), std::move(Member));
      skipWs();
      if (Pos >= Text.size()) {
        fail("unterminated object");
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool array(JsonValue &V) {
    V.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Elem;
      if (!value(Elem))
        return false;
      V.Arr.push_back(std::move(Elem));
      skipWs();
      if (Pos >= Text.size()) {
        fail("unterminated array");
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool hex4(unsigned &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= Text.size()) {
        fail("truncated \\u escape");
        return false;
      }
      char C = Text[Pos++];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = unsigned(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = unsigned(C - 'A') + 10;
      else {
        fail("bad \\u escape");
        return false;
      }
      Out = Out * 16 + D;
    }
    return true;
  }

  void appendUtf8(std::string &S, unsigned Cp) {
    if (Cp < 0x80) {
      S += char(Cp);
    } else if (Cp < 0x800) {
      S += char(0xC0 | (Cp >> 6));
      S += char(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      S += char(0xE0 | (Cp >> 12));
      S += char(0x80 | ((Cp >> 6) & 0x3F));
      S += char(0x80 | (Cp & 0x3F));
    } else {
      S += char(0xF0 | (Cp >> 18));
      S += char(0x80 | ((Cp >> 12) & 0x3F));
      S += char(0x80 | ((Cp >> 6) & 0x3F));
      S += char(0x80 | (Cp & 0x3F));
    }
  }

  bool string(std::string &Out) {
    ++Pos; // '"'
    for (;;) {
      if (Pos >= Text.size()) {
        fail("unterminated string");
        return false;
      }
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size()) {
        fail("truncated escape");
        return false;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp;
        if (!hex4(Cp))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Cp >= 0xD800 && Cp <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          unsigned Lo;
          if (!hex4(Lo))
            return false;
          if (Lo >= 0xDC00 && Lo <= 0xDFFF)
            Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
          else
            Pos = Save; // not a pair; emit the lone surrogate as-is
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        fail("bad escape");
        return false;
      }
    }
  }

  bool number(JsonValue &V) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto digits = [&] {
      size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    if (digits() == 0) {
      fail("expected a value");
      return false;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (digits() == 0) {
        fail("digits required after '.'");
        return false;
      }
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (digits() == 0) {
        fail("digits required in exponent");
        return false;
      }
    }
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                        nullptr);
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

std::optional<JsonValue> cmm::parseJson(std::string_view Text,
                                        std::string *Err) {
  if (Err)
    Err->clear();
  return Parser(Text, Err).run();
}
