//===- frontend/MiniM3Ast.h - Mini-Modula-3 internal AST --------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal abstract syntax for Mini-Modula-3. Deliberately simple tagged
/// structs: the front end is a demonstration client of C--, not the object
/// of study.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_FRONTEND_MINIM3AST_H
#define CMM_FRONTEND_MINIM3AST_H

#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cmm::m3 {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node (tagged union style).
struct Expr {
  enum class Kind : uint8_t { Int, Var, Call, Binary, Unary };
  enum class Op : uint8_t {
    Add, Sub, Mul, Div, Mod,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,
    Not, Neg,
  };

  Kind K = Kind::Int;
  SourceLoc Loc;
  int64_t IntVal = 0;      ///< Int
  std::string Name;        ///< Var, Call
  std::vector<ExprPtr> Args; ///< Call
  Op O = Op::Add;          ///< Binary, Unary
  ExprPtr L, R;            ///< Binary (L,R), Unary (L)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One TRY handler: "| E(w) => stmts".
struct Handler {
  SourceLoc Loc;
  std::string ExnName;
  std::optional<std::string> Param;
  std::vector<StmtPtr> Body;
};

/// One statement node.
struct Stmt {
  enum class Kind : uint8_t { Assign, Call, If, While, Return, Raise, Try };

  Kind K = Kind::Assign;
  SourceLoc Loc;

  std::string Name;          ///< Assign target, Raise exception
  ExprPtr Value;             ///< Assign value, Call expr, Return value,
                             ///< Raise argument
  std::vector<std::pair<ExprPtr, std::vector<StmtPtr>>> Arms; ///< If
  std::vector<StmtPtr> Else; ///< If else
  ExprPtr Cond;              ///< While
  std::vector<StmtPtr> Body; ///< While, Try
  std::vector<Handler> Handlers; ///< Try
};

struct ProcDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<std::string> Params;
  bool HasResult = false;
  std::vector<std::string> Locals;
  std::vector<StmtPtr> Body;
};

struct ExnDecl {
  SourceLoc Loc;
  std::string Name;
  bool HasArg = false;
};

struct M3Module {
  std::vector<ExnDecl> Exceptions;
  std::vector<std::string> Globals;
  std::vector<ProcDecl> Procs;
};

} // namespace cmm::m3

#endif // CMM_FRONTEND_MINIM3AST_H
