//===- frontend/MiniM3Parser.cpp ------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "frontend/MiniM3Parser.h"

#include <cctype>

using namespace cmm;
using namespace cmm::m3;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class Tk : uint8_t {
  Eof, Ident, Int,
  // keywords
  Exception, Var, Integer, Procedure, Begin, End, If, Then, Elsif, Else,
  While, Do, Return, Raise, Try, Except, AndKw, OrKw, NotKw, Div, Mod,
  // punctuation
  Semi, Colon, Comma, LParen, RParen, Assign, Arrow, Bar,
  Eq, Ne, Lt, Le, Gt, Ge, Plus, Minus, Star,
};

struct M3Token {
  Tk K = Tk::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t Int = 0;
};

class M3Lexer {
public:
  M3Lexer(const std::string &Src, DiagnosticEngine &Diags)
      : Src(Src), Diags(Diags) {}

  M3Token next() {
    skip();
    M3Token T;
    T.Loc = here();
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C))) {
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        T.Text += get();
      T.K = keyword(T.Text);
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        Num += get();
      T.K = Tk::Int;
      T.Int = std::stoll(Num);
      return T;
    }
    get();
    switch (C) {
    case ';': T.K = Tk::Semi; return T;
    case ',': T.K = Tk::Comma; return T;
    case '(': T.K = Tk::LParen; return T;
    case ')': T.K = Tk::RParen; return T;
    case '|': T.K = Tk::Bar; return T;
    case '+': T.K = Tk::Plus; return T;
    case '-': T.K = Tk::Minus; return T;
    case '*': T.K = Tk::Star; return T;
    case '#': T.K = Tk::Ne; return T;
    case ':':
      if (Pos < Src.size() && Src[Pos] == '=') {
        get();
        T.K = Tk::Assign;
      } else {
        T.K = Tk::Colon;
      }
      return T;
    case '=':
      if (Pos < Src.size() && Src[Pos] == '>') {
        get();
        T.K = Tk::Arrow;
      } else {
        T.K = Tk::Eq;
      }
      return T;
    case '<':
      if (Pos < Src.size() && Src[Pos] == '=') {
        get();
        T.K = Tk::Le;
      } else {
        T.K = Tk::Lt;
      }
      return T;
    case '>':
      if (Pos < Src.size() && Src[Pos] == '=') {
        get();
        T.K = Tk::Ge;
      } else {
        T.K = Tk::Gt;
      }
      return T;
    default:
      Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
      return next();
    }
  }

private:
  SourceLoc here() const { return SourceLoc(Line, Col); }
  char get() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        get();
        continue;
      }
      // Modula-3 comments: (* ... *), nesting ignored for simplicity.
      if (C == '(' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
        get();
        get();
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == ')'))
          get();
        if (Pos + 1 < Src.size()) {
          get();
          get();
        }
        continue;
      }
      break;
    }
  }
  static Tk keyword(const std::string &S) {
    if (S == "EXCEPTION") return Tk::Exception;
    if (S == "VAR") return Tk::Var;
    if (S == "INTEGER") return Tk::Integer;
    if (S == "PROCEDURE") return Tk::Procedure;
    if (S == "BEGIN") return Tk::Begin;
    if (S == "END") return Tk::End;
    if (S == "IF") return Tk::If;
    if (S == "THEN") return Tk::Then;
    if (S == "ELSIF") return Tk::Elsif;
    if (S == "ELSE") return Tk::Else;
    if (S == "WHILE") return Tk::While;
    if (S == "DO") return Tk::Do;
    if (S == "RETURN") return Tk::Return;
    if (S == "RAISE") return Tk::Raise;
    if (S == "TRY") return Tk::Try;
    if (S == "EXCEPT") return Tk::Except;
    if (S == "AND") return Tk::AndKw;
    if (S == "OR") return Tk::OrKw;
    if (S == "NOT") return Tk::NotKw;
    if (S == "DIV") return Tk::Div;
    if (S == "MOD") return Tk::Mod;
    return Tk::Ident;
  }

  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class M3Parser {
public:
  M3Parser(const std::string &Src, DiagnosticEngine &Diags)
      : Lex(Src, Diags), Diags(Diags) {
    Cur = Lex.next();
  }

  std::optional<M3Module> run();

private:
  bool at(Tk K) const { return Cur.K == K; }
  M3Token eat() {
    M3Token T = std::move(Cur);
    Cur = Lex.next();
    return T;
  }
  bool accept(Tk K) {
    if (!at(K))
      return false;
    eat();
    return true;
  }
  bool expect(Tk K, const char *What) {
    if (accept(K))
      return true;
    Diags.error(Cur.Loc, std::string("expected ") + What);
    return false;
  }
  std::string expectIdent(const char *What) {
    if (at(Tk::Ident))
      return eat().Text;
    Diags.error(Cur.Loc, std::string("expected ") + What);
    return "_error_";
  }

  void parseProc(M3Module &Mod);
  std::vector<StmtPtr> parseStmts();
  StmtPtr parseStmt();
  ExprPtr parseExpr() { return parseOr(); }
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseCmp();
  ExprPtr parseAdd();
  ExprPtr parseMul();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  bool atStmtStart() const {
    switch (Cur.K) {
    case Tk::Ident:
    case Tk::If:
    case Tk::While:
    case Tk::Return:
    case Tk::Raise:
    case Tk::Try:
      return true;
    default:
      return false;
    }
  }

  M3Lexer Lex;
  DiagnosticEngine &Diags;
  M3Token Cur;
};

std::optional<M3Module> M3Parser::run() {
  M3Module Mod;
  while (!at(Tk::Eof)) {
    if (accept(Tk::Exception)) {
      ExnDecl E;
      E.Loc = Cur.Loc;
      E.Name = expectIdent("exception name");
      if (accept(Tk::LParen)) {
        expect(Tk::Integer, "INTEGER");
        expect(Tk::RParen, "')'");
        E.HasArg = true;
      }
      expect(Tk::Semi, "';'");
      Mod.Exceptions.push_back(std::move(E));
      continue;
    }
    if (accept(Tk::Var)) {
      std::string Name = expectIdent("variable name");
      expect(Tk::Colon, "':'");
      expect(Tk::Integer, "INTEGER");
      expect(Tk::Semi, "';'");
      Mod.Globals.push_back(Name);
      continue;
    }
    if (accept(Tk::Procedure)) {
      parseProc(Mod);
      continue;
    }
    Diags.error(Cur.Loc, "expected EXCEPTION, VAR, or PROCEDURE");
    eat();
  }
  if (Diags.hasErrors())
    return std::nullopt;
  return Mod;
}

void M3Parser::parseProc(M3Module &Mod) {
  ProcDecl P;
  P.Loc = Cur.Loc;
  P.Name = expectIdent("procedure name");
  expect(Tk::LParen, "'('");
  if (!at(Tk::RParen)) {
    do {
      std::string Name = expectIdent("parameter name");
      expect(Tk::Colon, "':'");
      expect(Tk::Integer, "INTEGER");
      P.Params.push_back(Name);
    } while (accept(Tk::Comma) || accept(Tk::Semi));
  }
  expect(Tk::RParen, "')'");
  if (accept(Tk::Colon)) {
    expect(Tk::Integer, "INTEGER");
    P.HasResult = true;
  }
  expect(Tk::Eq, "'='");
  while (accept(Tk::Var)) {
    while (at(Tk::Ident)) {
      P.Locals.push_back(eat().Text);
      while (accept(Tk::Comma)) {
        if (at(Tk::Ident))
          P.Locals.push_back(eat().Text);
        else
          Diags.error(Cur.Loc, "expected variable name");
      }
      expect(Tk::Colon, "':'");
      expect(Tk::Integer, "INTEGER");
      expect(Tk::Semi, "';'");
    }
  }
  expect(Tk::Begin, "BEGIN");
  P.Body = parseStmts();
  expect(Tk::End, "END");
  std::string Closer = expectIdent("procedure name after END");
  if (Closer != P.Name)
    Diags.error(P.Loc, "END name does not match procedure name");
  expect(Tk::Semi, "';'");
  Mod.Procs.push_back(std::move(P));
}

std::vector<StmtPtr> M3Parser::parseStmts() {
  std::vector<StmtPtr> Out;
  while (atStmtStart()) {
    StmtPtr S = parseStmt();
    if (S)
      Out.push_back(std::move(S));
  }
  return Out;
}

StmtPtr M3Parser::parseStmt() {
  auto S = std::make_unique<Stmt>();
  S->Loc = Cur.Loc;
  switch (Cur.K) {
  case Tk::Ident: {
    std::string Name = eat().Text;
    if (accept(Tk::Assign)) {
      S->K = Stmt::Kind::Assign;
      S->Name = Name;
      S->Value = parseExpr();
      expect(Tk::Semi, "';'");
      return S;
    }
    // Call statement.
    S->K = Stmt::Kind::Call;
    auto Call = std::make_unique<Expr>();
    Call->K = Expr::Kind::Call;
    Call->Loc = S->Loc;
    Call->Name = Name;
    expect(Tk::LParen, "'('");
    if (!at(Tk::RParen)) {
      do
        Call->Args.push_back(parseExpr());
      while (accept(Tk::Comma));
    }
    expect(Tk::RParen, "')'");
    expect(Tk::Semi, "';'");
    S->Value = std::move(Call);
    return S;
  }
  case Tk::If: {
    eat();
    S->K = Stmt::Kind::If;
    ExprPtr Cond = parseExpr();
    expect(Tk::Then, "THEN");
    std::vector<StmtPtr> Body = parseStmts();
    S->Arms.emplace_back(std::move(Cond), std::move(Body));
    while (accept(Tk::Elsif)) {
      ExprPtr C2 = parseExpr();
      expect(Tk::Then, "THEN");
      std::vector<StmtPtr> B2 = parseStmts();
      S->Arms.emplace_back(std::move(C2), std::move(B2));
    }
    if (accept(Tk::Else))
      S->Else = parseStmts();
    expect(Tk::End, "END");
    expect(Tk::Semi, "';'");
    return S;
  }
  case Tk::While: {
    eat();
    S->K = Stmt::Kind::While;
    S->Cond = parseExpr();
    expect(Tk::Do, "DO");
    S->Body = parseStmts();
    expect(Tk::End, "END");
    expect(Tk::Semi, "';'");
    return S;
  }
  case Tk::Return: {
    eat();
    S->K = Stmt::Kind::Return;
    if (!at(Tk::Semi))
      S->Value = parseExpr();
    expect(Tk::Semi, "';'");
    return S;
  }
  case Tk::Raise: {
    eat();
    S->K = Stmt::Kind::Raise;
    S->Name = expectIdent("exception name");
    if (accept(Tk::LParen)) {
      S->Value = parseExpr();
      expect(Tk::RParen, "')'");
    }
    expect(Tk::Semi, "';'");
    return S;
  }
  case Tk::Try: {
    eat();
    S->K = Stmt::Kind::Try;
    S->Body = parseStmts();
    expect(Tk::Except, "EXCEPT");
    while (accept(Tk::Bar)) {
      Handler H;
      H.Loc = Cur.Loc;
      H.ExnName = expectIdent("exception name");
      if (accept(Tk::LParen)) {
        H.Param = expectIdent("handler parameter");
        expect(Tk::RParen, "')'");
      }
      expect(Tk::Arrow, "'=>'");
      H.Body = parseStmts();
      S->Handlers.push_back(std::move(H));
    }
    expect(Tk::End, "END");
    expect(Tk::Semi, "';'");
    return S;
  }
  default:
    Diags.error(Cur.Loc, "expected statement");
    eat();
    return nullptr;
  }
}

ExprPtr M3Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (at(Tk::OrKw)) {
    SourceLoc Loc = eat().Loc;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Binary;
    E->Loc = Loc;
    E->O = Expr::Op::Or;
    E->L = std::move(L);
    E->R = parseAnd();
    L = std::move(E);
  }
  return L;
}

ExprPtr M3Parser::parseAnd() {
  ExprPtr L = parseCmp();
  while (at(Tk::AndKw)) {
    SourceLoc Loc = eat().Loc;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Binary;
    E->Loc = Loc;
    E->O = Expr::Op::And;
    E->L = std::move(L);
    E->R = parseCmp();
    L = std::move(E);
  }
  return L;
}

ExprPtr M3Parser::parseCmp() {
  ExprPtr L = parseAdd();
  Expr::Op O;
  switch (Cur.K) {
  case Tk::Eq: O = Expr::Op::Eq; break;
  case Tk::Ne: O = Expr::Op::Ne; break;
  case Tk::Lt: O = Expr::Op::Lt; break;
  case Tk::Le: O = Expr::Op::Le; break;
  case Tk::Gt: O = Expr::Op::Gt; break;
  case Tk::Ge: O = Expr::Op::Ge; break;
  default:
    return L;
  }
  SourceLoc Loc = eat().Loc;
  auto E = std::make_unique<Expr>();
  E->K = Expr::Kind::Binary;
  E->Loc = Loc;
  E->O = O;
  E->L = std::move(L);
  E->R = parseAdd();
  return E;
}

ExprPtr M3Parser::parseAdd() {
  ExprPtr L = parseMul();
  while (at(Tk::Plus) || at(Tk::Minus)) {
    Expr::Op O = at(Tk::Plus) ? Expr::Op::Add : Expr::Op::Sub;
    SourceLoc Loc = eat().Loc;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Binary;
    E->Loc = Loc;
    E->O = O;
    E->L = std::move(L);
    E->R = parseMul();
    L = std::move(E);
  }
  return L;
}

ExprPtr M3Parser::parseMul() {
  ExprPtr L = parseUnary();
  while (at(Tk::Star) || at(Tk::Div) || at(Tk::Mod)) {
    Expr::Op O = at(Tk::Star)  ? Expr::Op::Mul
                 : at(Tk::Div) ? Expr::Op::Div
                               : Expr::Op::Mod;
    SourceLoc Loc = eat().Loc;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Binary;
    E->Loc = Loc;
    E->O = O;
    E->L = std::move(L);
    E->R = parseUnary();
    L = std::move(E);
  }
  return L;
}

ExprPtr M3Parser::parseUnary() {
  if (at(Tk::Minus) || at(Tk::NotKw)) {
    Expr::Op O = at(Tk::Minus) ? Expr::Op::Neg : Expr::Op::Not;
    SourceLoc Loc = eat().Loc;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Unary;
    E->Loc = Loc;
    E->O = O;
    E->L = parseUnary();
    return E;
  }
  return parsePrimary();
}

ExprPtr M3Parser::parsePrimary() {
  auto E = std::make_unique<Expr>();
  E->Loc = Cur.Loc;
  if (at(Tk::Int)) {
    E->K = Expr::Kind::Int;
    E->IntVal = eat().Int;
    return E;
  }
  if (at(Tk::Ident)) {
    E->Name = eat().Text;
    if (accept(Tk::LParen)) {
      E->K = Expr::Kind::Call;
      if (!at(Tk::RParen)) {
        do
          E->Args.push_back(parseExpr());
        while (accept(Tk::Comma));
      }
      expect(Tk::RParen, "')'");
      return E;
    }
    E->K = Expr::Kind::Var;
    return E;
  }
  if (accept(Tk::LParen)) {
    ExprPtr Inner = parseExpr();
    expect(Tk::RParen, "')'");
    return Inner;
  }
  Diags.error(Cur.Loc, "expected expression");
  eat();
  E->K = Expr::Kind::Int;
  return E;
}

} // namespace

std::optional<M3Module> cmm::m3::parseM3(const std::string &Source,
                                         DiagnosticEngine &Diags) {
  return M3Parser(Source, Diags).run();
}
