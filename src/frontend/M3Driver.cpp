//===- frontend/M3Driver.cpp ----------------------------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "frontend/M3Driver.h"

#include "ir/Translate.h"
#include "ir/Validate.h"
#include "opt/PassManager.h"
#include "rts/Dispatchers.h"
#include "sem/Machine.h"

using namespace cmm;

std::unique_ptr<M3Program> cmm::buildM3(const std::string &Source,
                                        ExnPolicy Policy,
                                        DiagnosticEngine &Diags,
                                        bool Optimize) {
  std::optional<M3Compiled> Compiled = compileMiniM3(Source, Policy, Diags);
  if (!Compiled)
    return nullptr;
  std::unique_ptr<IrProgram> Prog =
      compileProgram({Compiled->CmmSource}, Diags);
  if (!Prog)
    return nullptr;
  if (Optimize) {
    OptOptions Opts;
    Opts.PlaceCalleeSaves = true;
    optimizeProgram(*Prog, Opts);
    DiagnosticEngine VDiags;
    if (!validateProgram(*Prog, VDiags)) {
      Diags.error(SourceLoc(), "optimizer produced an invalid graph:\n" +
                                   VDiags.str());
      return nullptr;
    }
  }
  auto Out = std::make_unique<M3Program>();
  Out->Prog = std::move(Prog);
  Out->Policy = Policy;
  Out->CmmSource = std::move(Compiled->CmmSource);
  return Out;
}

M3RunResult cmm::runM3(const M3Program &P, uint64_t Input,
                       uint64_t MaxSteps) {
  M3RunResult R;
  Machine M(*P.Prog);
  M.start("m3main", {Value::bits(32, Input)});

  MachineStatus St;
  if (P.Policy == ExnPolicy::RuntimeUnwinding) {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D), MaxSteps);
    R.DispatcherRuns = D.dispatches();
    R.ActivationsWalked = D.walkStats().ActivationsVisited;
  } else {
    St = M.run(MaxSteps);
  }

  R.MachineStats = M.stats();
  if (St != MachineStatus::Halted) {
    R.WrongReason = M.wrongReason();
    return R;
  }
  const std::vector<Value> &Out = M.argArea();
  if (Out.size() != 2) {
    R.WrongReason = "m3main returned an unexpected number of values";
    return R;
  }
  R.Ok = true;
  R.UnhandledExn = Out[0].Raw == 1;
  R.Value = Out[1].Raw;
  return R;
}
