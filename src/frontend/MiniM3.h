//===- frontend/MiniM3.h - A Modula-3-like front end ------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-Modula-3: a small source language with TRY-EXCEPT-END and RAISE in
/// the style of the paper's Figure 7, compiled to *textual C--* under a
/// selectable exception-handling policy. This demonstrates the paper's
/// thesis: the front end chooses the policy; C-- provides only mechanisms;
/// the same optimizer and run-time interface serve every policy.
///
/// Policies (Figure 2's design space):
///  - StackCutting: Figure 10 — an in-memory handler stack, raise pops and
///    `cut to`s the topmost continuation in constant time.
///  - RuntimeUnwinding: Figure 8 — RAISE yields to the front-end runtime;
///    the Figure 9 dispatcher walks the stack using descriptors deposited
///    at call sites.
///  - NativeUnwinding: Section 4.2's compiled unwinding — may-raise
///    procedures return abnormally with `return <0/1>` (branch-table
///    method); no run-time system involvement at all.
///
/// The fourth technique, continuation-passing style, is supported by C--
/// through fully general tail calls and "requires no further explanation"
/// (Section 2); the repository demonstrates it with hand-written C--
/// (examples/dispatch_strategies, bench/fig2).
///
/// Language summary:
///   EXCEPTION E;  EXCEPTION E(INTEGER);
///   VAR g: INTEGER;
///   PROCEDURE F(x: INTEGER): INTEGER =
///   VAR y: INTEGER;
///   BEGIN ... END F;
///   Statements: v := e;  F(args);  IF/ELSIF/ELSE/END; WHILE/DO/END;
///     RETURN e;  RAISE E(e);  TRY ... EXCEPT | E(w) => ... END;
///   Expressions: integers, variables, calls, + - * DIV MOD,
///     comparisons (= # < <= > >=), AND OR NOT, parentheses.
///   DIV/MOD by zero raises the predeclared exception DivZero.
///   The procedure named Main is the program entry point.
///
//===----------------------------------------------------------------------===//

#ifndef CMM_FRONTEND_MINIM3_H
#define CMM_FRONTEND_MINIM3_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cmm {

/// The exception-handling policy a Mini-Modula-3 compilation uses.
enum class ExnPolicy : uint8_t {
  StackCutting,
  RuntimeUnwinding,
  NativeUnwinding,
};

const char *exnPolicyName(ExnPolicy P);

/// Result of a Mini-Modula-3 compilation.
struct M3Compiled {
  /// The generated C-- module. Compile it with cmm::compileProgram; the
  /// module exports `m3main`, which takes one bits32 argument, runs Main,
  /// and returns (status, value): status 0 = normal result, 1 = unhandled
  /// exception (value is its tag).
  std::string CmmSource;
  /// Tags assigned to the declared exceptions, in declaration order
  /// (DivZero is predeclared with tag 0xD1F0).
  std::vector<std::pair<std::string, uint64_t>> ExnTags;
  ExnPolicy Policy = ExnPolicy::StackCutting;
};

/// Compiles \p Source under \p Policy. Returns nullopt with diagnostics on
/// error.
std::optional<M3Compiled> compileMiniM3(const std::string &Source,
                                        ExnPolicy Policy,
                                        DiagnosticEngine &Diags);

/// The tag of the predeclared DivZero exception (matches the standard
/// library's yield tag so all policies agree).
inline constexpr uint64_t M3DivZeroTag = 0xD1F0;

} // namespace cmm

#endif // CMM_FRONTEND_MINIM3_H
