//===- frontend/MiniM3Codegen.cpp - Mini-Modula-3 to C-- ------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles Mini-Modula-3 to textual C-- under one of three exception
/// policies (see MiniM3.h). The generated module exports `m3main`, which
/// returns (status, value).
///
/// Policy summaries:
///  - StackCutting (Figure 10): a TRY pushes its handler continuation onto
///    an in-memory stack addressed by the global register exn_top; RAISE
///    pops the topmost continuation and cuts to it with (tag, arg); the
///    handler continuation dispatches on the tag and re-raises on no match.
///  - RuntimeUnwinding (Figures 8/9): calls inside a TRY carry `also
///    unwinds to` and a static descriptor listing every handler in scope;
///    RAISE yields to the front-end runtime (the Figure 9 dispatcher).
///  - NativeUnwinding (Section 4.2): a may-raise procedure has exactly one
///    alternate return continuation carrying (tag, arg); RAISE inside a TRY
///    branches to the local dispatch code, otherwise returns abnormally
///    with `return <0/1>`.
///
/// DIV and MOD compile to an explicit zero test that raises the predeclared
/// DivZero exception — the front end chooses the "slow, but easy" expansion
/// of Section 4.3 so all three policies share one failure path.
///
//===----------------------------------------------------------------------===//

#include "frontend/MiniM3.h"

#include "frontend/MiniM3Parser.h"
#include "support/Assert.h"

#include <map>
#include <set>

using namespace cmm;
using namespace cmm::m3;

const char *cmm::exnPolicyName(ExnPolicy P) {
  switch (P) {
  case ExnPolicy::StackCutting: return "stack-cutting";
  case ExnPolicy::RuntimeUnwinding: return "runtime-unwinding";
  case ExnPolicy::NativeUnwinding: return "native-unwinding";
  }
  return "unknown";
}

namespace {

/// One handler visible at a program point (for descriptors and dispatch).
struct ScopedHandler {
  uint64_t Tag = 0;
  bool TakesArg = false;
  std::string ContName;   ///< unwinding: continuation to unwind to
  const Handler *H = nullptr;
};

/// Per-TRY codegen context.
struct TryCtx {
  unsigned Id = 0;
  std::string JoinLabel;
  // Cutting: the continuation pushed on the handler stack.
  std::string CutCont;
  // Unwinding: in-scope continuation list (this TRY's first) + descriptor.
  std::vector<std::string> UnwindConts;
  std::string DescName;
  // Native: the alternate-return continuation and its dispatch label.
  std::string RetCont;
  std::string DispatchLabel;
};

class Codegen {
public:
  Codegen(const M3Module &Mod, ExnPolicy Policy, DiagnosticEngine &Diags)
      : Mod(Mod), Policy(Policy), Diags(Diags) {}

  std::optional<M3Compiled> run();

private:
  // Source emission helpers.
  void line(std::string Text) {
    Body.append(Indent * 2, ' ');
    Body += Text;
    Body += '\n';
  }
  std::string temp() {
    std::string T = "m3t" + std::to_string(NumTemps++);
    return T;
  }
  std::string label(const std::string &Base) {
    return Base + std::to_string(NumLabels++);
  }

  // Analysis.
  void assignTags();
  void computeMayRaise();
  bool stmtMayRaise(const Stmt &S) const;
  bool exprMayRaise(const Expr &E) const;

  // Per-procedure generation.
  void genProc(const ProcDecl &P);
  void genStmts(const std::vector<StmtPtr> &Stmts);
  void genStmt(const Stmt &S);
  void genTry(const Stmt &S);
  std::string genExpr(const Expr &E);
  std::string genCall(const Expr &E);
  void genRaise(uint64_t Tag, const std::string &ArgAtom, SourceLoc Loc);
  void genRaiseReRaise();
  std::string callAnnotations(bool CalleeMayRaise);
  void genNormalReturn(const std::string &Atom);
  void emitWrapper();

  // Name checks.
  bool isVar(const std::string &Name) const {
    return CurLocals.count(Name) || GlobalSet.count(Name);
  }

  const M3Module &Mod;
  ExnPolicy Policy;
  DiagnosticEngine &Diags;

  std::map<std::string, uint64_t> Tags;      ///< exception -> tag
  std::map<std::string, bool> ExnTakesArg;
  std::map<std::string, const ProcDecl *> Procs;
  std::set<std::string> MayRaise;            ///< procedures that may raise
  std::set<std::string> GlobalSet;

  // Module-level output (data blocks, procedures).
  std::string ModuleOut;

  // Per-procedure state.
  const ProcDecl *CurProc = nullptr;
  std::string Body;          ///< statements of the current procedure
  std::string Conts;         ///< continuation blocks, appended at the end
  unsigned Indent = 0;
  unsigned NumTemps = 0;
  unsigned NumLabels = 0;
  unsigned NumTrys = 0;
  std::set<std::string> CurLocals;
  std::vector<TryCtx> TryStack;
  std::vector<std::string> AllCutConts; ///< all handler conts of this proc
  /// Unwinding policy: the handlers in scope around the current TRY (for
  /// descriptor nesting).
  std::vector<ScopedHandler> OuterScope;
  bool CurMayRaise = false;
  bool NeedsProp = false; ///< native policy: proc needs the m3prop cont
};

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

void Codegen::assignTags() {
  Tags["DivZero"] = M3DivZeroTag;
  ExnTakesArg["DivZero"] = false;
  uint64_t Next = 1001;
  for (const ExnDecl &E : Mod.Exceptions) {
    if (!Tags.emplace(E.Name, Next).second) {
      Diags.error(E.Loc, "duplicate exception '" + E.Name + "'");
      continue;
    }
    ExnTakesArg[E.Name] = E.HasArg;
    ++Next;
  }
}

bool Codegen::exprMayRaise(const Expr &E) const {
  switch (E.K) {
  case Expr::Kind::Int:
  case Expr::Kind::Var:
    return false;
  case Expr::Kind::Call: {
    if (MayRaise.count(E.Name))
      return true;
    for (const ExprPtr &A : E.Args)
      if (exprMayRaise(*A))
        return true;
    return false;
  }
  case Expr::Kind::Binary:
    if (E.O == Expr::Op::Div || E.O == Expr::Op::Mod)
      return true; // may raise DivZero
    return exprMayRaise(*E.L) || exprMayRaise(*E.R);
  case Expr::Kind::Unary:
    return exprMayRaise(*E.L);
  }
  return false;
}

bool Codegen::stmtMayRaise(const Stmt &S) const {
  switch (S.K) {
  case Stmt::Kind::Raise:
    return true;
  case Stmt::Kind::Assign:
  case Stmt::Kind::Call:
    return S.Value && exprMayRaise(*S.Value);
  case Stmt::Kind::Return:
    return S.Value && exprMayRaise(*S.Value);
  case Stmt::Kind::If: {
    for (const auto &[C, B] : S.Arms) {
      if (exprMayRaise(*C))
        return true;
      for (const StmtPtr &T : B)
        if (stmtMayRaise(*T))
          return true;
    }
    for (const StmtPtr &T : S.Else)
      if (stmtMayRaise(*T))
        return true;
    return false;
  }
  case Stmt::Kind::While: {
    if (exprMayRaise(*S.Cond))
      return true;
    for (const StmtPtr &T : S.Body)
      if (stmtMayRaise(*T))
        return true;
    return false;
  }
  case Stmt::Kind::Try: {
    // Conservative: a TRY may re-raise what it does not handle, and
    // handler bodies may raise.
    for (const StmtPtr &T : S.Body)
      if (stmtMayRaise(*T))
        return true;
    for (const Handler &H : S.Handlers)
      for (const StmtPtr &T : H.Body)
        if (stmtMayRaise(*T))
          return true;
    return false;
  }
  }
  return false;
}

void Codegen::computeMayRaise() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const ProcDecl &P : Mod.Procs) {
      if (MayRaise.count(P.Name))
        continue;
      bool Raises = false;
      for (const StmtPtr &S : P.Body)
        Raises |= stmtMayRaise(*S);
      if (Raises) {
        MayRaise.insert(P.Name);
        Changed = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::string Codegen::genExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::Int:
    if (E.IntVal < 0)
      return "(0 - " + std::to_string(-E.IntVal) + ")";
    return std::to_string(E.IntVal);
  case Expr::Kind::Var:
    if (!isVar(E.Name))
      Diags.error(E.Loc, "use of undeclared variable '" + E.Name + "'");
    return E.Name;
  case Expr::Kind::Call:
    return genCall(E);
  case Expr::Kind::Unary: {
    std::string V = genExpr(*E.L);
    if (E.O == Expr::Op::Neg)
      return "(0 - " + V + ")";
    return "(" + V + " == 0)";
  }
  case Expr::Kind::Binary: {
    if (E.O == Expr::Op::Div || E.O == Expr::Op::Mod) {
      // Section 4.3, "slow, but easy": test explicitly, raise DivZero.
      std::string A = temp(), B = temp();
      CurLocals.insert(A);
      CurLocals.insert(B);
      line(A + " = " + genExpr(*E.L) + ";");
      line(B + " = " + genExpr(*E.R) + ";");
      line("if " + B + " == 0 {");
      ++Indent;
      genRaise(M3DivZeroTag, "0", E.Loc);
      --Indent;
      line("}");
      const char *Prim = E.O == Expr::Op::Div ? "%divs" : "%mods";
      return std::string(Prim) + "(" + A + ", " + B + ")";
    }
    std::string L = genExpr(*E.L);
    std::string R = genExpr(*E.R);
    switch (E.O) {
    case Expr::Op::Add: return "(" + L + " + " + R + ")";
    case Expr::Op::Sub: return "(" + L + " - " + R + ")";
    case Expr::Op::Mul: return "(" + L + " * " + R + ")";
    case Expr::Op::Eq: return "(" + L + " == " + R + ")";
    case Expr::Op::Ne: return "(" + L + " != " + R + ")";
    case Expr::Op::Lt: return "(" + L + " < " + R + ")";
    case Expr::Op::Le: return "(" + L + " <= " + R + ")";
    case Expr::Op::Gt: return "(" + L + " > " + R + ")";
    case Expr::Op::Ge: return "(" + L + " >= " + R + ")";
    case Expr::Op::And: return "((" + L + " != 0) & (" + R + " != 0))";
    case Expr::Op::Or: return "((" + L + " != 0) | (" + R + " != 0))";
    default:
      cmm_unreachable("handled above");
    }
  }
  }
  cmm_unreachable("unknown expression kind");
}

std::string Codegen::callAnnotations(bool CalleeMayRaise) {
  std::string A;
  switch (Policy) {
  case ExnPolicy::StackCutting:
    // Any callee might raise through the handler stack; the innermost TRY's
    // continuation is the only possible target while this call is pending.
    if (!TryStack.empty())
      A += " also cuts to " + TryStack.back().CutCont;
    A += " also aborts";
    return A;
  case ExnPolicy::RuntimeUnwinding: {
    if (!TryStack.empty()) {
      const TryCtx &T = TryStack.back();
      A += " also unwinds to ";
      for (size_t I = 0; I < T.UnwindConts.size(); ++I) {
        if (I)
          A += ", ";
        A += T.UnwindConts[I];
      }
      A += " also aborts descriptors " + T.DescName;
      return A;
    }
    A += " also aborts";
    return A;
  }
  case ExnPolicy::NativeUnwinding:
    if (!CalleeMayRaise)
      return "";
    if (!TryStack.empty())
      return " also returns to " + TryStack.back().RetCont;
    // Outside any TRY: the exception propagates through this procedure's
    // own abnormal return.
    return " also returns to m3prop";
  }
  cmm_unreachable("unknown policy");
}

std::string Codegen::genCall(const Expr &E) {
  auto It = Procs.find(E.Name);
  if (It == Procs.end()) {
    Diags.error(E.Loc, "call to undeclared procedure '" + E.Name + "'");
    return "0";
  }
  if (It->second->Params.size() != E.Args.size())
    Diags.error(E.Loc, "wrong number of arguments to '" + E.Name + "'");
  std::vector<std::string> Args;
  for (const ExprPtr &A : E.Args)
    Args.push_back(genExpr(*A));
  std::string R = temp();
  CurLocals.insert(R);
  std::string Call = R + " = " + E.Name + "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Call += ", ";
    Call += Args[I];
  }
  Call += ")" + callAnnotations(MayRaise.count(E.Name) != 0) + ";";
  line(Call);
  if (Policy == ExnPolicy::NativeUnwinding && MayRaise.count(E.Name) &&
      TryStack.empty())
    NeedsProp = true;
  return R;
}

//===----------------------------------------------------------------------===//
// Raising
//===----------------------------------------------------------------------===//

void Codegen::genRaise(uint64_t Tag, const std::string &ArgAtom,
                       SourceLoc Loc) {
  (void)Loc;
  switch (Policy) {
  case ExnPolicy::StackCutting: {
    // Figure 10's RAISE: pop the handler stack and cut to the continuation.
    line("m3kv = bits32[exn_top];");
    line("exn_top = exn_top - 4;");
    std::string Cut = "cut to m3kv(" + std::to_string(Tag) + ", " + ArgAtom +
                      ")";
    if (!AllCutConts.empty()) {
      Cut += " also cuts to ";
      for (size_t I = 0; I < AllCutConts.size(); ++I) {
        if (I)
          Cut += ", ";
        Cut += AllCutConts[I];
      }
    }
    line(Cut + ";");
    return;
  }
  case ExnPolicy::RuntimeUnwinding: {
    // Figure 8's RAISE: wake the front-end runtime. The yield call site
    // carries the same handler information as any other call here, so the
    // dispatcher can find handlers in the raising activation itself.
    line("yield(" + std::to_string(Tag) + ", " + ArgAtom + ")" +
         callAnnotations(/*CalleeMayRaise=*/true) + ";");
    return;
  }
  case ExnPolicy::NativeUnwinding:
    if (!TryStack.empty()) {
      // Handled (or at least dispatched) locally: no control transfer
      // leaves the procedure at all.
      line("m3_tag = " + std::to_string(Tag) + ";");
      line("m3_arg = " + ArgAtom + ";");
      line("goto " + TryStack.back().DispatchLabel + ";");
      return;
    }
    line("return <0/1> (" + std::to_string(Tag) + ", " + ArgAtom + ");");
    return;
  }
  cmm_unreachable("unknown policy");
}

void Codegen::genNormalReturn(const std::string &Atom) {
  if (Policy == ExnPolicy::NativeUnwinding && CurMayRaise) {
    line("return <1/1> (" + Atom + ");");
    return;
  }
  line("return (" + Atom + ");");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Codegen::genStmts(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts)
    genStmt(*S);
}

void Codegen::genStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Assign: {
    if (!isVar(S.Name))
      Diags.error(S.Loc, "assignment to undeclared variable '" + S.Name +
                             "'");
    std::string V = genExpr(*S.Value);
    line(S.Name + " = " + V + ";");
    return;
  }
  case Stmt::Kind::Call:
    genExpr(*S.Value); // result temp discarded
    return;
  case Stmt::Kind::If: {
    // IF/ELSIF chains become nested C-- ifs; a join label is unnecessary
    // because C-- if/else nests.
    std::string Join = label("Lfi");
    for (const auto &[Cond, Then] : S.Arms) {
      std::string C = genExpr(*Cond);
      line("if (" + C + ") != 0 {");
      ++Indent;
      genStmts(Then);
      line("goto " + Join + ";");
      --Indent;
      line("}");
    }
    genStmts(S.Else);
    line(Join + ":");
    return;
  }
  case Stmt::Kind::While: {
    std::string Head = label("Lwhile");
    std::string Done = label("Ldone");
    line(Head + ":");
    std::string C = genExpr(*S.Cond); // re-evaluated each iteration: emitted
                                      // temps sit before the test
    line("if (" + C + ") == 0 { goto " + Done + "; }");
    ++Indent;
    genStmts(S.Body);
    --Indent;
    line("goto " + Head + ";");
    line(Done + ":");
    return;
  }
  case Stmt::Kind::Return: {
    if (S.Value) {
      if (!CurProc->HasResult)
        Diags.error(S.Loc, "RETURN with a value in a proper procedure");
      std::string V = genExpr(*S.Value);
      genNormalReturn(V);
    } else {
      genNormalReturn("0");
    }
    return;
  }
  case Stmt::Kind::Raise: {
    auto It = Tags.find(S.Name);
    if (It == Tags.end()) {
      Diags.error(S.Loc, "RAISE of undeclared exception '" + S.Name + "'");
      return;
    }
    bool Takes = ExnTakesArg[S.Name];
    if (Takes != (S.Value != nullptr))
      Diags.error(S.Loc, Takes ? "exception requires an argument"
                               : "exception takes no argument");
    std::string Arg = S.Value ? genExpr(*S.Value) : std::string("0");
    // Hoist compound expressions into a temp so the raise sequence stays
    // simple.
    if (Arg.find(' ') != std::string::npos) {
      std::string T = temp();
      CurLocals.insert(T);
      line(T + " = " + Arg + ";");
      Arg = T;
    }
    genRaise(It->second, Arg, S.Loc);
    return;
  }
  case Stmt::Kind::Try:
    genTry(S);
    return;
  }
  cmm_unreachable("unknown statement kind");
}

//===----------------------------------------------------------------------===//
// TRY-EXCEPT-END
//===----------------------------------------------------------------------===//

void Codegen::genTry(const Stmt &S) {
  TryCtx Ctx;
  Ctx.Id = NumTrys++;
  Ctx.JoinLabel = label("Ljoin");
  std::string Id = std::to_string(Ctx.Id);

  // Resolve handlers and validate.
  std::vector<ScopedHandler> Handlers;
  for (const Handler &H : S.Handlers) {
    auto It = Tags.find(H.ExnName);
    if (It == Tags.end()) {
      Diags.error(H.Loc, "handler for undeclared exception '" + H.ExnName +
                             "'");
      continue;
    }
    ScopedHandler SH;
    SH.Tag = It->second;
    SH.TakesArg = H.Param.has_value();
    SH.H = &H;
    if (H.Param) {
      if (!ExnTakesArg[H.ExnName])
        Diags.error(H.Loc, "exception '" + H.ExnName + "' carries no value");
      CurLocals.insert(*H.Param);
    }
    Handlers.push_back(std::move(SH));
  }

  switch (Policy) {
  case ExnPolicy::StackCutting: {
    Ctx.CutCont = "m3kc" + Id;
    AllCutConts.push_back(Ctx.CutCont);
    // Enter the handler scope (Figure 10).
    line("exn_top = exn_top + 4;");
    line("bits32[exn_top] = " + Ctx.CutCont + ";");
    TryStack.push_back(Ctx);
    genStmts(S.Body);
    TryStack.pop_back();
    line("exn_top = exn_top - 4;");
    line("goto " + Ctx.JoinLabel + ";");

    // The handler continuation: dispatch on the tag, re-raise on no match.
    // Continuations are emitted at the end of the procedure; they jump back
    // to the join label.
    std::string Saved = std::move(Body);
    Body.clear();
    unsigned SavedIndent = Indent;
    Indent = 0;
    line("continuation " + Ctx.CutCont + "(m3_tag, m3_arg):");
    ++Indent;
    for (const ScopedHandler &SH : Handlers) {
      line("if m3_tag == " + std::to_string(SH.Tag) + " {");
      ++Indent;
      if (SH.H->Param)
        line(*SH.H->Param + " = m3_arg;");
      genStmts(SH.H->Body);
      line("goto " + Ctx.JoinLabel + ";");
      --Indent;
      line("}");
    }
    // No handler matched: propagate to the next handler on the stack.
    genRaiseReRaise();
    --Indent;
    Conts += Body;
    Body = std::move(Saved);
    Indent = SavedIndent;
    line(Ctx.JoinLabel + ":");
    return;
  }

  case ExnPolicy::RuntimeUnwinding: {
    // Continuations for this TRY, then those of enclosing TRYs: the
    // descriptor lists every handler in scope at these call sites, and
    // cont_num indexes the `also unwinds to` list.
    Ctx.DescName = "m3desc_" + CurProc->Name + "_" + Id;
    std::vector<ScopedHandler> InScope = Handlers;
    for (size_t I = 0; I < Handlers.size(); ++I)
      Ctx.UnwindConts.push_back("m3kh" + Id + "_" + std::to_string(I));
    if (!TryStack.empty()) {
      const TryCtx &Outer = TryStack.back();
      for (const std::string &C : Outer.UnwindConts)
        Ctx.UnwindConts.push_back(C);
      for (const ScopedHandler &SH : OuterScope)
        InScope.push_back(SH);
    }
    // Emit the descriptor data block.
    ModuleOut += "data " + Ctx.DescName + " {\n";
    ModuleOut += "  bits32 " + std::to_string(InScope.size()) + ";\n";
    for (size_t I = 0; I < InScope.size(); ++I) {
      ModuleOut += "  bits32 " + std::to_string(InScope[I].Tag) + ";\n";
      ModuleOut += "  bits32 " + std::to_string(I) + ";\n";
      ModuleOut +=
          "  bits32 " + std::to_string(InScope[I].TakesArg ? 1 : 0) + ";\n";
    }
    ModuleOut += "}\n";

    std::vector<ScopedHandler> SavedScope = std::move(OuterScope);
    OuterScope = InScope;
    TryStack.push_back(Ctx);
    genStmts(S.Body);
    TryStack.pop_back();
    OuterScope = std::move(SavedScope);
    line("goto " + Ctx.JoinLabel + ";");

    // One continuation per handler of *this* TRY (enclosing TRYs own
    // theirs).
    std::string Saved = std::move(Body);
    Body.clear();
    unsigned SavedIndent = Indent;
    Indent = 0;
    for (size_t I = 0; I < Handlers.size(); ++I) {
      const ScopedHandler &SH = Handlers[I];
      if (SH.H->Param)
        line("continuation m3kh" + Id + "_" + std::to_string(I) + "(" +
             *SH.H->Param + "):");
      else
        line("continuation m3kh" + Id + "_" + std::to_string(I) + "():");
      ++Indent;
      genStmts(SH.H->Body);
      line("goto " + Ctx.JoinLabel + ";");
      --Indent;
    }
    Conts += Body;
    Body = std::move(Saved);
    Indent = SavedIndent;
    line(Ctx.JoinLabel + ":");
    return;
  }

  case ExnPolicy::NativeUnwinding: {
    Ctx.RetCont = "m3kr" + Id;
    Ctx.DispatchLabel = "Ldisp" + Id;
    TryStack.push_back(Ctx);
    genStmts(S.Body);
    TryStack.pop_back();
    line("goto " + Ctx.JoinLabel + ";");

    // Dispatch code lives in the continuation; an enclosing TRY's dispatch
    // is reached by goto when nothing here matches.
    std::string Saved = std::move(Body);
    Body.clear();
    unsigned SavedIndent = Indent;
    Indent = 0;
    line("continuation " + Ctx.RetCont + "(m3_tag, m3_arg):");
    line(Ctx.DispatchLabel + ":");
    ++Indent;
    for (const ScopedHandler &SH : Handlers) {
      line("if m3_tag == " + std::to_string(SH.Tag) + " {");
      ++Indent;
      if (SH.H->Param)
        line(*SH.H->Param + " = m3_arg;");
      genStmts(SH.H->Body);
      line("goto " + Ctx.JoinLabel + ";");
      --Indent;
      line("}");
    }
    if (!TryStack.empty()) {
      line("goto " + TryStack.back().DispatchLabel + ";");
    } else {
      line("return <0/1> (m3_tag, m3_arg);");
    }
    --Indent;
    Conts += Body;
    Body = std::move(Saved);
    Indent = SavedIndent;
    line(Ctx.JoinLabel + ":");
    return;
  }
  }
  cmm_unreachable("unknown policy");
}

//===----------------------------------------------------------------------===//
// Re-raise (stack cutting)
//===----------------------------------------------------------------------===//

void Codegen::genRaiseReRaise() {
  line("m3kv = bits32[exn_top];");
  line("exn_top = exn_top - 4;");
  std::string Cut = "cut to m3kv(m3_tag, m3_arg)";
  if (!AllCutConts.empty()) {
    Cut += " also cuts to ";
    for (size_t I = 0; I < AllCutConts.size(); ++I) {
      if (I)
        Cut += ", ";
      Cut += AllCutConts[I];
    }
  }
  line(Cut + ";");
}

//===----------------------------------------------------------------------===//
// Procedures and the module
//===----------------------------------------------------------------------===//

void Codegen::genProc(const ProcDecl &P) {
  CurProc = &P;
  Body.clear();
  Conts.clear();
  Indent = 1;
  NumTemps = 0;
  NumLabels = 0;
  NumTrys = 0;
  CurLocals.clear();
  TryStack.clear();
  AllCutConts.clear();
  OuterScope.clear();
  NeedsProp = false;
  CurMayRaise = MayRaise.count(P.Name) != 0;

  std::set<std::string> ParamSet;
  for (const std::string &Prm : P.Params) {
    if (!ParamSet.insert(Prm).second)
      Diags.error(P.Loc, "duplicate parameter '" + Prm + "'");
    CurLocals.insert(Prm);
  }
  for (const std::string &L : P.Locals)
    if (!CurLocals.insert(L).second)
      Diags.error(P.Loc, "duplicate local '" + L + "'");

  genStmts(P.Body);
  genNormalReturn("0"); // falling off the end returns 0

  if (NeedsProp && Policy == ExnPolicy::NativeUnwinding) {
    Conts += "continuation m3prop(m3_tag, m3_arg):\n";
    Conts += "  return <0/1> (m3_tag, m3_arg);\n";
  }

  // Assemble the procedure.
  std::string Header = P.Name + "(";
  for (size_t I = 0; I < P.Params.size(); ++I) {
    if (I)
      Header += ", ";
    Header += "bits32 " + P.Params[I];
  }
  Header += ") {\n";
  std::string Decls = "  bits32 m3_tag, m3_arg, m3kv;\n";
  for (const std::string &V : CurLocals)
    if (!ParamSet.count(V))
      Decls += "  bits32 " + V + ";\n";
  ModuleOut += Header + Decls + Body + Conts + "}\n";
}

void Codegen::emitWrapper() {
  auto It = Procs.find("Main");
  if (It == Procs.end()) {
    Diags.error(SourceLoc(), "no procedure named Main");
    return;
  }
  const ProcDecl *Main = It->second;
  if (Main->Params.size() > 1) {
    Diags.error(Main->Loc, "Main takes at most one INTEGER parameter");
    return;
  }
  std::string CallArgs = Main->Params.empty() ? "" : "x";
  bool MainRaises = MayRaise.count("Main") != 0;

  switch (Policy) {
  case ExnPolicy::StackCutting:
    ModuleOut += "m3main(bits32 x) {\n"
                 "  bits32 r, m3_tag, m3_arg;\n"
                 "  exn_top = m3_exn_stack;\n"
                 "  exn_top = exn_top + 4;\n"
                 "  bits32[exn_top] = m3ku;\n"
                 "  r = Main(" +
                 CallArgs +
                 ") also cuts to m3ku also aborts;\n"
                 "  exn_top = exn_top - 4;\n"
                 "  return (0, r);\n"
                 "continuation m3ku(m3_tag, m3_arg):\n"
                 "  return (1, m3_tag);\n"
                 "}\n";
    return;
  case ExnPolicy::RuntimeUnwinding: {
    // A catch-all descriptor: every declared exception unwinds to its own
    // tiny continuation, which reports the tag.
    std::vector<std::pair<std::string, uint64_t>> All(Tags.begin(),
                                                      Tags.end());
    ModuleOut += "data m3desc_catchall {\n";
    ModuleOut += "  bits32 " + std::to_string(All.size()) + ";\n";
    for (size_t I = 0; I < All.size(); ++I) {
      ModuleOut += "  bits32 " + std::to_string(All[I].second) + ";\n";
      ModuleOut += "  bits32 " + std::to_string(I) + ";\n";
      ModuleOut += "  bits32 0;\n";
    }
    ModuleOut += "}\n";
    ModuleOut += "m3main(bits32 x) {\n  bits32 r;\n  r = Main(" + CallArgs +
                 ") also unwinds to ";
    for (size_t I = 0; I < All.size(); ++I) {
      if (I)
        ModuleOut += ", ";
      ModuleOut += "m3ku" + std::to_string(I);
    }
    ModuleOut += " also aborts descriptors m3desc_catchall;\n"
                 "  return (0, r);\n";
    for (size_t I = 0; I < All.size(); ++I)
      ModuleOut += "continuation m3ku" + std::to_string(I) + "():\n" +
                   "  return (1, " + std::to_string(All[I].second) + ");\n";
    ModuleOut += "}\n";
    return;
  }
  case ExnPolicy::NativeUnwinding:
    if (!MainRaises) {
      ModuleOut += "m3main(bits32 x) {\n  bits32 r;\n  r = Main(" +
                   CallArgs + ");\n  return (0, r);\n}\n";
      return;
    }
    ModuleOut += "m3main(bits32 x) {\n"
                 "  bits32 r, m3_tag, m3_arg;\n"
                 "  r = Main(" +
                 CallArgs +
                 ") also returns to m3ku;\n"
                 "  return (0, r);\n"
                 "continuation m3ku(m3_tag, m3_arg):\n"
                 "  return (1, m3_tag);\n"
                 "}\n";
    return;
  }
  cmm_unreachable("unknown policy");
}

std::optional<M3Compiled> Codegen::run() {
  // Reject identifiers that would collide with generated names or C--
  // keywords.
  static const std::set<std::string> CmmKeywords = {
      "export", "import", "global", "register", "data", "if", "else",
      "goto", "return", "jump", "cut", "to", "continuation", "also",
      "cuts", "unwinds", "returns", "aborts", "descriptors", "sizeof",
      "yield", "exn_top"};
  auto CheckName = [&](const std::string &Name, SourceLoc Loc) {
    if (Name.rfind("m3", 0) == 0 || CmmKeywords.count(Name) ||
        Name.rfind("bits", 0) == 0 || Name.rfind("float", 0) == 0)
      Diags.error(Loc, "identifier '" + Name +
                           "' is reserved by the Mini-Modula-3 compiler");
  };

  assignTags();
  for (const ExnDecl &E : Mod.Exceptions)
    CheckName(E.Name, E.Loc);
  for (const std::string &G : Mod.Globals) {
    CheckName(G, SourceLoc());
    if (!GlobalSet.insert(G).second)
      Diags.error(SourceLoc(), "duplicate global '" + G + "'");
  }
  for (const ProcDecl &P : Mod.Procs) {
    CheckName(P.Name, P.Loc);
    for (const std::string &Prm : P.Params)
      CheckName(Prm, P.Loc);
    for (const std::string &L : P.Locals)
      CheckName(L, P.Loc);
    if (!Procs.emplace(P.Name, &P).second)
      Diags.error(P.Loc, "duplicate procedure '" + P.Name + "'");
  }
  computeMayRaise();

  ModuleOut = "/* generated by the Mini-Modula-3 front end; policy: " +
              std::string(exnPolicyName(Policy)) + " */\n";
  ModuleOut += "export m3main;\n";
  if (Policy == ExnPolicy::StackCutting) {
    ModuleOut += "global bits32 exn_top;\n";
    ModuleOut += "data m3_exn_stack { bits32[256]; }\n";
  }
  for (const std::string &G : Mod.Globals)
    ModuleOut += "global bits32 " + G + ";\n";

  for (const ProcDecl &P : Mod.Procs)
    genProc(P);
  emitWrapper();

  if (Diags.hasErrors())
    return std::nullopt;
  M3Compiled Out;
  Out.CmmSource = std::move(ModuleOut);
  Out.Policy = Policy;
  for (const auto &[Name, Tag] : Tags)
    Out.ExnTags.emplace_back(Name, Tag);
  return Out;
}

} // namespace

std::optional<M3Compiled> cmm::compileMiniM3(const std::string &Source,
                                             ExnPolicy Policy,
                                             DiagnosticEngine &Diags) {
  std::optional<M3Module> Mod = m3::parseM3(Source, Diags);
  if (!Mod)
    return std::nullopt;
  return Codegen(*Mod, Policy, Diags).run();
}
