//===- frontend/M3Driver.h - Compile-and-run helper -------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience driver: compile a Mini-Modula-3 program under a policy, link
/// it against the standard library, optionally optimize, and run it on the
/// abstract machine with the right front-end runtime attached (only the
/// RuntimeUnwinding policy needs one — the other policies dispatch entirely
/// in generated code, which is rather the point).
///
//===----------------------------------------------------------------------===//

#ifndef CMM_FRONTEND_M3DRIVER_H
#define CMM_FRONTEND_M3DRIVER_H

#include "frontend/MiniM3.h"
#include "ir/Ir.h"
#include "sem/Stats.h"

#include <memory>

namespace cmm {

/// A compiled, linked, ready-to-run Mini-Modula-3 program.
struct M3Program {
  std::unique_ptr<IrProgram> Prog;
  ExnPolicy Policy;
  std::string CmmSource;
};

/// Compiles and links \p Source under \p Policy. \p Optimize runs the full
/// pipeline (with exceptional edges and callee-saves placement). Returns
/// null with diagnostics on error.
std::unique_ptr<M3Program> buildM3(const std::string &Source,
                                   ExnPolicy Policy, DiagnosticEngine &Diags,
                                   bool Optimize = false);

/// Result of one execution.
struct M3RunResult {
  bool Ok = false;           ///< machine halted normally
  bool UnhandledExn = false; ///< status word was 1
  uint64_t Value = 0;        ///< Main's result, or the unhandled tag
  Stats MachineStats;
  uint64_t DispatcherRuns = 0;       ///< unwinding policy only
  uint64_t ActivationsWalked = 0;    ///< unwinding policy only
  std::string WrongReason;
};

/// Runs m3main(\p Input) with the policy-appropriate runtime.
M3RunResult runM3(const M3Program &P, uint64_t Input,
                  uint64_t MaxSteps = 50'000'000);

} // namespace cmm

#endif // CMM_FRONTEND_M3DRIVER_H
