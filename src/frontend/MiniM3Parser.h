//===- frontend/MiniM3Parser.h - Mini-Modula-3 parser -----------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#ifndef CMM_FRONTEND_MINIM3PARSER_H
#define CMM_FRONTEND_MINIM3PARSER_H

#include "frontend/MiniM3Ast.h"
#include "support/Diagnostics.h"

#include <optional>

namespace cmm::m3 {

/// Parses Mini-Modula-3 source. Returns nullopt with diagnostics on error.
std::optional<M3Module> parseM3(const std::string &Source,
                                DiagnosticEngine &Diags);

} // namespace cmm::m3

#endif // CMM_FRONTEND_MINIM3PARSER_H
