//===- tests/TraceProfileTest.cpp - obs/ trace + profiler + opt stats -----===//
//
// Part of cmmex (see DESIGN.md). Covers the src/obs subsystem: the JSONL
// golden trace, Chrome trace_event structural invariants, the ring-buffer
// flight recorder, Profiler totals against Machine::stats(), and the
// PassManager per-pass instrumentation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "obs/Profiler.h"
#include "obs/StatsJson.h"
#include "obs/Trace.h"
#include "opt/PassManager.h"
#include "rts/Dispatchers.h"

#include <sstream>

using namespace cmm;
using namespace cmm::test;

namespace {

// Keep this source byte-for-byte stable: the JSONL golden below encodes its
// line:column call-site locations and the machine's exact step numbering.
const char *goldenSource() {
  return R"(export main;
add(bits32 a, bits32 b) {
  return (a + b);
}
main() {
  bits32 r;
  r = add(1, 2);
  r = add(r, 3);
  return (r);
}
)";
}

// See unwindSource() in ObserverTest.cpp (the Figures 8/9 program).
const char *unwindSource() {
  return R"(
export main;
global bits32 moves_tried;
data desc_try {
  bits32 2;
  bits32 101; bits32 0; bits32 1;
  bits32 102; bits32 1; bits32 0;
}
make_move(bits32 t) {
  if t == 7 { yield(101, 42) also aborts; }
  if t == 9 { yield(102) also aborts; }
  return;
}
deep(bits32 t, bits32 d) {
  if d == 0 {
    make_move(t) also aborts;
  } else {
    deep(t, d - 1) also aborts;
  }
  return;
}
try_a_move(bits32 t, bits32 depth) {
  bits32 s, r;
  deep(t, depth) also unwinds to k1, k2 also aborts descriptors desc_try;
  r = 1;
  goto finish;
finish:
  moves_tried = moves_tried + 1;
  return (r);
continuation k1(s):
  r = 100 + s;
  goto finish;
continuation k2:
  r = 200;
  goto finish;
}
main(bits32 t, bits32 depth) {
  bits32 r;
  r = try_a_move(t, depth);
  return (r, moves_tried);
}
)";
}

size_t countOccurrences(const std::string &Haystack, const std::string &Pat) {
  size_t N = 0;
  for (size_t P = Haystack.find(Pat); P != std::string::npos;
       P = Haystack.find(Pat, P + Pat.size()))
    ++N;
  return N;
}

TEST(Trace, JsonlGolden) {
  auto Prog = compile({goldenSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::ostringstream OS;
  TraceSink Sink(OS, {});
  M.setObserver(&Sink);
  M.start("main", {});
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  Sink.finish();

  const char *Golden =
      "{\"ev\":\"start\",\"step\":0,\"depth\":0,\"proc\":\"main\"}\n"
      "{\"ev\":\"call\",\"step\":4,\"depth\":1,\"caller\":\"main\","
      "\"callee\":\"add\",\"site\":\"7:3\"}\n"
      "{\"ev\":\"return\",\"step\":8,\"depth\":0,\"callee\":\"add\","
      "\"to\":\"main\",\"site\":\"7:3\",\"cont\":0}\n"
      "{\"ev\":\"call\",\"step\":11,\"depth\":1,\"caller\":\"main\","
      "\"callee\":\"add\",\"site\":\"8:3\"}\n"
      "{\"ev\":\"return\",\"step\":15,\"depth\":0,\"callee\":\"add\","
      "\"to\":\"main\",\"site\":\"8:3\",\"cont\":0}\n"
      "{\"ev\":\"halt\",\"step\":18,\"results\":1}\n";
  EXPECT_EQ(OS.str(), Golden);
  EXPECT_EQ(Sink.eventsDropped(), 0u);
}

TEST(Trace, ChromeFormatIsStructurallySound) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::ostringstream OS;
  TraceOptions TO;
  TO.Fmt = TraceOptions::Format::Chrome;
  TraceSink Sink(OS, TO);
  M.setObserver(&Sink);
  M.start("main", {b32(7), b32(2)});
  UnwindingDispatcher D(M);
  ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
  Sink.finish();

  std::string S = OS.str();
  EXPECT_EQ(S.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(S.find("\n]}\n"), std::string::npos);
  // Every duration span that opens also closes.
  EXPECT_EQ(countOccurrences(S, "\"ph\":\"B\""),
            countOccurrences(S, "\"ph\":\"E\""));
  // The dispatcher's work rides on its own track.
  EXPECT_NE(S.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(S.find("dispatch:unwind"), std::string::npos);
  // The yield shows as an instant event.
  EXPECT_NE(S.find("\"ph\":\"i\""), std::string::npos);
  // No trailing comma before the closing bracket (valid JSON).
  EXPECT_EQ(S.find(",\n]}"), std::string::npos);
}

TEST(Trace, FinishClosesOpenSpansMidRun) {
  auto Prog = compile({goldenSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::ostringstream OS;
  TraceOptions TO;
  TO.Fmt = TraceOptions::Format::Chrome;
  TraceSink Sink(OS, TO);
  M.setObserver(&Sink);
  M.start("main", {});
  ASSERT_EQ(M.run(5), MachineStatus::Running); // stop mid-flight
  Sink.finish();
  std::string S = OS.str();
  EXPECT_EQ(countOccurrences(S, "\"ph\":\"B\""),
            countOccurrences(S, "\"ph\":\"E\""));
}

TEST(Trace, RingBufferKeepsNewestEvents) {
  auto Prog = compile({goldenSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::ostringstream OS;
  TraceOptions TO;
  TO.RingCapacity = 3;
  TraceSink Sink(OS, TO);
  M.setObserver(&Sink);
  M.start("main", {});
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  Sink.finish();

  std::string S = OS.str();
  size_t Lines = countOccurrences(S, "\n");
  EXPECT_EQ(Lines, 3u);
  EXPECT_GT(Sink.eventsDropped(), 0u);
  EXPECT_EQ(Sink.eventsEmitted(), Lines + Sink.eventsDropped());
  // The newest events survive: the halt is the last line.
  EXPECT_NE(S.find("\"ev\":\"halt\""), std::string::npos);
  // The oldest (start) was dropped.
  EXPECT_EQ(S.find("\"ev\":\"start\""), std::string::npos);
}

TEST(Trace, StepEventsOptIn) {
  auto Prog = compile({goldenSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::ostringstream OS;
  TraceOptions TO;
  TO.IncludeSteps = true;
  TraceSink Sink(OS, TO);
  M.setObserver(&Sink);
  M.start("main", {});
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  Sink.finish();
  EXPECT_EQ(countOccurrences(OS.str(), "\"ev\":\"step\""),
            M.stats().Steps);
}

TEST(Profiler, TotalsAgreeWithStats) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  Profiler P;
  M.setObserver(&P);
  M.start("main", {b32(7), b32(3)});
  UnwindingDispatcher D(M);
  ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
  EXPECT_EQ(M.argArea()[0], b32(142));

  const Stats &S = M.stats();
  uint64_t Steps = 0, CallsIn = 0, CallsOut = 0, Returns = 0, Yields = 0,
           UnwindPops = 0;
  for (const auto &[Proc, PP] : P.procs()) {
    Steps += PP.Steps;
    CallsIn += PP.CallsIn;
    CallsOut += PP.CallsOut;
    Returns += PP.Returns;
    Yields += PP.Yields;
    UnwindPops += PP.UnwindPops;
  }
  EXPECT_EQ(Steps, S.Steps);
  EXPECT_EQ(CallsIn, S.Calls);
  EXPECT_EQ(CallsOut, S.Calls);
  EXPECT_EQ(Yields, S.Yields);
  EXPECT_EQ(UnwindPops, S.UnwindPops);

  uint64_t SiteCalls = 0, SitePops = 0;
  for (const auto &[Node, SP] : P.sites()) {
    SiteCalls += SP.Calls;
    SitePops += SP.UnwindPops;
  }
  EXPECT_EQ(SiteCalls, S.Calls);
  EXPECT_EQ(SitePops, S.UnwindPops);

  const DispatchProfile &DP = P.dispatchProfile();
  EXPECT_EQ(DP.Dispatches, 1u);
  EXPECT_EQ(DP.Handled, 1u);
  EXPECT_GT(DP.ActivationsVisited, 0u);
  uint64_t HistPops = 0, HistDispatches = 0;
  for (const auto &[Pops, N] : DP.UnwindPopHistogram) {
    HistPops += Pops * N;
    HistDispatches += N;
  }
  EXPECT_EQ(HistDispatches, DP.Dispatches);
  EXPECT_EQ(HistPops, S.UnwindPops);

  std::string Report = P.report();
  EXPECT_NE(Report.find("try_a_move"), std::string::npos);
  EXPECT_NE(Report.find("make_move"), std::string::npos);
  EXPECT_NE(Report.find("dispatch"), std::string::npos);

  JsonWriter W;
  P.writeJson(W);
  std::string J = W.take();
  EXPECT_NE(J.find("\"procs\""), std::string::npos);
  EXPECT_NE(J.find("\"sites\""), std::string::npos);
  EXPECT_NE(J.find("\"unwind_pop_histogram\""), std::string::npos);
}

TEST(StatsJson, AllThirteenCounters) {
  auto Prog = compile({goldenSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {});
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  std::string J = statsToJson(M.stats());
  for (const char *Key :
       {"steps", "calls", "jumps", "returns", "cuts", "frames_cut_over",
        "yields", "unwind_pops", "conts_bound", "loads", "stores",
        "callee_save_moves", "max_stack_depth"})
    EXPECT_NE(J.find("\"" + std::string(Key) + "\""), std::string::npos)
        << "missing stats key " << Key;
}

TEST(PassInstrumentation, RecordsRunsAndDeltas) {
  // A program the optimizer can visibly shrink: constants to fold, a copy
  // to propagate, and a dead assignment to remove.
  const char *Src = R"(
export main;
main() {
  bits32 a, b, c, dead;
  a = 2 + 3;
  b = a;
  dead = 99;
  c = b + 1;
  return (c);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  OptReport R = optimizeProgram(*Prog, Opts);

  EXPECT_GT(R.pass(PassId::ConstProp).Runs, 0u);
  EXPECT_GT(R.pass(PassId::CopyProp).Runs, 0u);
  EXPECT_GT(R.pass(PassId::DeadCode).Runs, 0u);
  EXPECT_GE(R.TotalMillis, 0.0);
  // Dead-code elimination removed at least one node overall.
  EXPECT_LT(R.pass(PassId::DeadCode).NodesDelta, 0);

  std::string Text = optReportText(R);
  EXPECT_NE(Text.find("constprop"), std::string::npos);
  EXPECT_NE(Text.find("deadcode"), std::string::npos);

  JsonWriter W;
  writeOptReportJson(W, R);
  std::string J = W.take();
  EXPECT_NE(J.find("\"passes\""), std::string::npos);
  EXPECT_NE(J.find("\"total_millis\""), std::string::npos);
  EXPECT_NE(J.find("\"also_edges_delta\""), std::string::npos);
}

TEST(PassInstrumentation, AlsoEdgeCounting) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  uint64_t Total = 0;
  for (const auto &P : Prog->Procs)
    Total += countAlsoEdges(*P);
  // try_a_move's call carries `also unwinds to k1, k2`; the helpers carry
  // `also aborts`. There must be exceptional edges in this program.
  EXPECT_GT(Total, 0u);
}

} // namespace
