//===- tests/TranslateTest.cpp - Section 5.3 translation shapes -----------===//
//
// Part of cmmex (see DESIGN.md). Structural tests of the C-- to Abstract
// C-- translation, the verifier, and the graph printer.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IrPrinter.h"
#include "ir/Succ.h"

using namespace cmm;
using namespace cmm::test;

namespace {

unsigned countKind(const IrProc &P, Node::Kind K) {
  unsigned N = 0;
  for (Node *Node : reachableNodes(P))
    if (Node->kind() == K)
      ++N;
  return N;
}

TEST(Translate, EntryThenParamCopyIn) {
  auto Prog = compile({"export f;\nf(bits32 a, bits32 b) {\n"
                       "  return (a + b);\n}\n"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  ASSERT_TRUE(F);
  auto *Entry = dyn_cast<EntryNode>(F->EntryPoint);
  ASSERT_TRUE(Entry);
  // "The values of parameters are bound later by a CopyIn node."
  auto *ParamsIn = dyn_cast<CopyInNode>(Entry->Next);
  ASSERT_TRUE(ParamsIn);
  ASSERT_EQ(ParamsIn->Vars.size(), 2u);
  EXPECT_EQ(Prog->Names->spelling(ParamsIn->Vars[0]), "a");
  EXPECT_EQ(Prog->Names->spelling(ParamsIn->Vars[1]), "b");
  // return (a+b) is CopyOut then Exit <0/0>.
  auto *Out = dyn_cast<CopyOutNode>(ParamsIn->Next);
  ASSERT_TRUE(Out);
  ASSERT_EQ(Out->Exprs.size(), 1u);
  auto *Exit = dyn_cast<ExitNode>(Out->Next);
  ASSERT_TRUE(Exit);
  EXPECT_EQ(Exit->ContIndex, 0u);
  EXPECT_EQ(Exit->AltCount, 0u);
}

TEST(Translate, EveryCallHasCopyOutAndBundle) {
  auto Prog = compile({R"(
export f;
g() { return; }
f() {
  bits32 t;
  g() also aborts;
  goto done;
continuation k(t):
  return;
done:
  return;
}
)"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  ASSERT_TRUE(F);
  for (Node *N : reachableNodes(*F)) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C)
      continue;
    EXPECT_TRUE(C->Bundle.Abort);
    EXPECT_EQ(C->Bundle.ReturnsTo.size(), 1u);
    EXPECT_NE(C->Bundle.normalReturn(), nullptr);
  }
  // The continuation is registered on the Entry node.
  auto *Entry = cast<EntryNode>(F->EntryPoint);
  ASSERT_EQ(Entry->Conts.size(), 1u);
  EXPECT_EQ(Prog->Names->spelling(Entry->Conts[0].first), "k");
  EXPECT_TRUE(isa<CopyInNode>(Entry->Conts[0].second));
}

TEST(Translate, GotoBranchesAreThreadedAway) {
  // Straight-line gotos leave no constant branches behind.
  auto Prog = compile({R"(
export f;
f(bits32 n) {
  bits32 s;
  s = 1;
  goto a;
a:
  goto b;
b:
  s = s + 1;
  return (s);
}
)"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  EXPECT_EQ(countKind(*F, Node::Kind::Branch), 0u);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "f", {b32(0)})[0], b32(2));
}

TEST(Translate, LoopKeepsOneBranch) {
  auto Prog = compile({R"(
export f;
f(bits32 n) {
loop:
  if n == 0 { return (7); }
  n = n - 1;
  goto loop;
}
)"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  EXPECT_EQ(countKind(*F, Node::Kind::Branch), 1u);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "f", {b32(5)})[0], b32(7));
}

TEST(Translate, EmptyInfiniteLoopIsRepresentable) {
  // `L: goto L;` — a pathological but legal program: it must not fold to
  // nothing, and must spin forever.
  auto Prog = compile({"export f;\nf() {\nL:\n  goto L;\n}\n"});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("f");
  EXPECT_EQ(M.run(10'000), MachineStatus::Running);
}

TEST(Translate, FallingOffTheEndReturnsNothing) {
  auto Prog = compile({"export f;\nf() { bits32 a;\n  a = 1;\n}\n"});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "f");
  EXPECT_TRUE(R.empty());
}

TEST(Translate, BundleOrderNormalReturnLast) {
  auto Prog = compile({R"(
export f;
g() { return <2/2> (0); }
f() {
  bits32 r, t;
  r = g() also returns to k0, k1;
  return (r);
continuation k0(t):
  return (t);
continuation k1(t):
  return (t);
}
)"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  for (Node *N : reachableNodes(*F)) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C)
      continue;
    ASSERT_EQ(C->Bundle.ReturnsTo.size(), 3u);
    EXPECT_EQ(C->Bundle.altReturnCount(), 2u);
    // Alternates are the declared continuations (CopyIn nodes bound on the
    // Entry); the normal return is the CopyIn binding r.
    EXPECT_TRUE(isa<CopyInNode>(C->Bundle.ReturnsTo[0]));
    EXPECT_TRUE(isa<CopyInNode>(C->Bundle.ReturnsTo[1]));
    auto *Normal = dyn_cast<CopyInNode>(C->Bundle.normalReturn());
    ASSERT_TRUE(Normal);
    ASSERT_EQ(Normal->Vars.size(), 1u);
    EXPECT_EQ(Prog->Names->spelling(Normal->Vars[0]), "r");
  }
}

TEST(Translate, MultipleModulesLinkAndShareData) {
  const char *ModA = R"(
export shared_data, get;
data shared_data { bits32 5, 6; }
get(bits32 i) {
  return (bits32[shared_data + i * 4]);
}
)";
  const char *ModB = R"(
export main;
import shared_data, get;
main() {
  bits32 a, b;
  a = get(0);
  b = bits32[shared_data + 4];
  return (a + b);
}
)";
  auto Prog = compile({ModA, ModB});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(11));
}

TEST(Validate, AcceptsEverythingTheSuiteCompiles) {
  // compile() already validates; this pins a direct corruption case.
  auto Prog = compile({"export f;\nf() { return; }\n"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  // Break the graph: null out the entry successor.
  cast<EntryNode>(F->EntryPoint)->Next = nullptr;
  DiagnosticEngine Diags;
  EXPECT_FALSE(validateProc(*F, *Prog->Names, Diags));
  EXPECT_NE(Diags.str().find("null"), std::string::npos);
}

TEST(IrPrinterOutput, MentionsEveryReachableNodeOnce) {
  auto Prog = compile({R"(
export f;
g() { return (0); }
f(bits32 a) {
  bits32 r, t;
  r = g() also unwinds to k also aborts;
  return (r + a);
continuation k(t):
  cut to t(a) also cuts to k;
}
)"});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  std::string Dump = printProc(*F, *Prog->Names);
  for (Node *N : reachableNodes(*F)) {
    std::string Tag = "n" + std::to_string(N->Id) + ":";
    size_t First = Dump.find("\n  " + Tag);
    EXPECT_NE(First, std::string::npos) << Tag << "\n" << Dump;
    EXPECT_EQ(Dump.find("\n  " + Tag, First + 1), std::string::npos)
        << Tag << " printed twice";
  }
  // Annotation structure is visible.
  EXPECT_NE(Dump.find("unwinds["), std::string::npos);
  EXPECT_NE(Dump.find("aborts"), std::string::npos);
  EXPECT_NE(Dump.find("CutTo"), std::string::npos);
}

} // namespace
