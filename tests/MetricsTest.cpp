//===- tests/MetricsTest.cpp - Metrics registry & exporter tests ----------===//
//
// Part of cmmex (see DESIGN.md).
//
// Pins the observable contracts of obs/Metrics.h: the histogram's bucket
// geometry and percentile accuracy (checked against a reference sort), the
// registry's thread safety (a get-or-create + record hammer written to be
// run under TSan), the null-registry cost discipline, and the exporter's
// JSONL well-formedness (every line parses, timestamps and sequence numbers
// advance, stop() flushes a final snapshot).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"
#include "support/MiniJson.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

using namespace cmm;

namespace {

//===----------------------------------------------------------------------===//
// Histogram bucket geometry
//===----------------------------------------------------------------------===//

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Values below SubBuckets (16) each own a unit-width bucket.
  for (uint64_t V = 0; V < Histogram::SubBuckets; ++V) {
    EXPECT_EQ(Histogram::bucketIndex(V), V);
    EXPECT_EQ(Histogram::bucketLowerBound(unsigned(V)), V);
  }
}

TEST(Histogram, BucketBoundariesPinned) {
  // First octave past the exact range: [16,32) splits into 16 sub-buckets
  // of width 1, so 16..31 still map to distinct buckets.
  EXPECT_EQ(Histogram::bucketIndex(16), 16u);
  EXPECT_EQ(Histogram::bucketIndex(17), 17u);
  EXPECT_EQ(Histogram::bucketIndex(31), 31u);
  // [32,64) has width-2 sub-buckets: 32 and 33 share one.
  EXPECT_EQ(Histogram::bucketIndex(32), 32u);
  EXPECT_EQ(Histogram::bucketIndex(33), 32u);
  EXPECT_EQ(Histogram::bucketIndex(34), 33u);
  // A value on a power of two starts its octave's first sub-bucket.
  EXPECT_EQ(Histogram::bucketLowerBound(Histogram::bucketIndex(1024)), 1024u);
  EXPECT_EQ(Histogram::bucketLowerBound(Histogram::bucketIndex(1u << 20)),
            uint64_t(1) << 20);
}

TEST(Histogram, LowerBoundInvertsIndexWithinResolution) {
  // For every sample, the bucket's lower bound is <= the sample and within
  // one part in 2^SubBits of it — the advertised 6.25% resolution.
  std::vector<uint64_t> Samples = {0,    1,     15,        16,   17,
                                   100,  1000,  4097,      65535, 1u << 20,
                                   (1u << 20) + 12345, ~uint32_t(0)};
  for (uint64_t V : Samples) {
    unsigned Idx = Histogram::bucketIndex(V);
    uint64_t Lo = Histogram::bucketLowerBound(Idx);
    EXPECT_LE(Lo, V) << "V=" << V;
    // Next bucket's lower bound bounds the error.
    uint64_t Hi = Histogram::bucketLowerBound(Idx + 1);
    EXPECT_GT(Hi, V) << "V=" << V;
    if (V >= Histogram::SubBuckets) {
      EXPECT_LE(double(Hi - Lo) / double(Lo),
                1.0 / Histogram::SubBuckets + 1e-9)
          << "V=" << V;
    }
  }
}

//===----------------------------------------------------------------------===//
// Percentiles against a reference sort
//===----------------------------------------------------------------------===//

/// Deterministic xorshift so the test never flakes.
uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

TEST(Histogram, PercentilesMatchReferenceSort) {
  Histogram H;
  std::vector<uint64_t> Ref;
  uint64_t S = 0x9E3779B97F4A7C15ull;
  for (int I = 0; I < 20000; ++I) {
    // Mixed scales: exact small values, mid-range, and heavy tail.
    uint64_t V = nextRand(S) % ((I % 3 == 0) ? 16 : (I % 3 == 1) ? 5000
                                                                 : 2000000);
    H.record(V);
    Ref.push_back(V);
  }
  std::sort(Ref.begin(), Ref.end());

  EXPECT_EQ(H.count(), Ref.size());
  EXPECT_EQ(H.min(), Ref.front());
  EXPECT_EQ(H.max(), Ref.back());

  for (double P : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    size_t Rank = size_t(P / 100.0 * double(Ref.size()));
    if (Rank >= Ref.size())
      Rank = Ref.size() - 1;
    uint64_t Want = Ref[Rank];
    uint64_t Got = H.percentile(P);
    // The histogram reports a bucket lower bound: never above the true
    // value's bucket, and within one sub-bucket of resolution below it.
    double Tol = double(Want) / Histogram::SubBuckets + 1.0;
    EXPECT_LE(double(Got), double(Want) + Tol) << "P=" << P;
    EXPECT_GE(double(Got) + Tol, double(Want)) << "P=" << P;
  }
  EXPECT_EQ(H.percentile(100.0), Ref.back());
  EXPECT_EQ(H.percentile(0.0), H.percentile(0.0)); // total order, no crash
}

TEST(Histogram, EmptyAndSingleSample) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  H.record(42);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 42u);
  EXPECT_EQ(H.max(), 42u);
  EXPECT_EQ(H.percentile(50), 42u);
  EXPECT_EQ(H.percentile(99), 42u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry Reg;
  Counter &A = Reg.counter("engine.jobs");
  Counter &B = Reg.counter("engine.jobs");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
  // Different kinds with different names coexist.
  Reg.gauge("engine.jobs_queued").set(-2);
  Reg.histogram("engine.job_micros").record(10);
  EXPECT_EQ(Reg.gauge("engine.jobs_queued").value(), -2);
}

TEST(MetricsRegistry, ThreadSafetyHammer) {
  // Get-or-create races with recording on shared and private names; run
  // under TSan this is the registry's data-race certificate. Totals must
  // reconcile exactly afterwards.
  MetricsRegistry Reg;
  constexpr int Threads = 8, Iters = 2000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&Reg, T] {
      for (int I = 0; I < Iters; ++I) {
        Reg.counter("shared.counter").add(1);
        Reg.counter("private.counter." + std::to_string(T)).add(1);
        Reg.histogram("shared.hist").record(uint64_t(I));
        Reg.gauge("shared.gauge").add(1);
        Reg.gauge("shared.gauge").sub(1);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Reg.counter("shared.counter").value(),
            uint64_t(Threads) * Iters);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Reg.counter("private.counter." + std::to_string(T)).value(),
              uint64_t(Iters));
  EXPECT_EQ(Reg.histogram("shared.hist").count(),
            uint64_t(Threads) * Iters);
  EXPECT_EQ(Reg.gauge("shared.gauge").value(), 0);
}

TEST(MetricsRegistry, JsonSnapshotParsesAndSorts) {
  MetricsRegistry Reg;
  Reg.counter("b.count").add(2);
  Reg.counter("a.count").add(1);
  Reg.gauge("depth").set(5);
  Reg.histogram("lat").record(100);
  Reg.probe("probed.value", [] { return uint64_t(7); });

  std::string Json = Reg.json();
  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Json, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << Json;
  const JsonValue *C = Doc->get("counters");
  ASSERT_TRUE(C && C->isObject());
  EXPECT_EQ(C->numberAt("a.count"), 1);
  EXPECT_EQ(C->numberAt("b.count"), 2);
  EXPECT_EQ(C->numberAt("probed.value"), 7); // probes render as counters
  EXPECT_EQ(Doc->get("gauges")->numberAt("depth"), 5);
  const JsonValue *H = Doc->get("histograms")->get("lat");
  ASSERT_TRUE(H);
  EXPECT_EQ(H->numberAt("count"), 1);
  EXPECT_EQ(H->numberAt("p50"), 100);
}

TEST(MetricsRegistry, NullSinkAcceptsUpdates) {
  // The null registry is a real sink: wiring against it must not crash and
  // updates must be cheap no-ops from the exporter's point of view.
  Counter &C = MetricsRegistry::null().counter("never.exported");
  C.add(5);
  EXPECT_GE(C.value(), 5u);
}

//===----------------------------------------------------------------------===//
// Exporter
//===----------------------------------------------------------------------===//

TEST(MetricsExporter, EmitsWellFormedSnapshotLines) {
  MetricsRegistry Reg;
  Counter &Jobs = Reg.counter("jobs");
  std::ostringstream OS;
  {
    MetricsExporter Ex(Reg, OS, /*IntervalMillis=*/5);
    for (int I = 0; I < 50; ++I) {
      Jobs.add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Ex.stop(); // writes the final snapshot
    EXPECT_GE(Ex.snapshotsWritten(), 2u);
    Ex.stop(); // idempotent
  }

  std::istringstream Lines(OS.str());
  std::string Line;
  double LastT = -1, LastSeq = -1;
  size_t N = 0;
  while (std::getline(Lines, Line)) {
    std::string Err;
    std::optional<JsonValue> Doc = parseJson(Line, &Err);
    ASSERT_TRUE(Doc) << "line " << N << ": " << Err;
    ASSERT_TRUE(Doc->isObject());
    EXPECT_GE(Doc->numberAt("t_ms"), LastT);
    EXPECT_GT(Doc->numberAt("seq"), LastSeq);
    LastT = Doc->numberAt("t_ms");
    LastSeq = Doc->numberAt("seq");
    const JsonValue *M = Doc->get("metrics");
    ASSERT_TRUE(M && M->get("counters"));
    ++N;
  }
  EXPECT_GE(N, 2u);
  // The final line carries the final counter value.
  EXPECT_EQ(LastSeq, double(N - 1));
}

TEST(MetricsExporter, FinalSnapshotSeesLastUpdates) {
  MetricsRegistry Reg;
  std::ostringstream OS;
  {
    MetricsExporter Ex(Reg, OS, /*IntervalMillis=*/60000); // never fires
    Reg.counter("late.count").add(9);
  } // destructor stops and flushes
  std::string Text = OS.str();
  ASSERT_FALSE(Text.empty());
  // Exactly one line (the final snapshot), carrying the last-moment add.
  std::string LastLine = Text.substr(0, Text.find('\n'));
  std::optional<JsonValue> Doc = parseJson(LastLine);
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->get("metrics")->get("counters")->numberAt("late.count"), 9);
}

} // namespace
