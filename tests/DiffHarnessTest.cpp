//===- tests/DiffHarnessTest.cpp - Differential harness corpus ------------===//
//
// Part of cmmex (see DESIGN.md). The `cmmdiff` oracle on a fixed seed
// corpus: every (strategy, optimizer configuration) cell of every seed must
// compute the same answer, the Table 3 ablation must be caught diverging on
// at least one seed, and the minimizer must emit reproducers that load.
// Regressions the harness has already found are pinned down at the bottom
// with their checked-in reproducers (see tests/repro_calleesaves_cut.cmm).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DiffHarness.h"
#include "opt/CalleeSaves.h"
#include "syntax/AstPrinter.h"
#include "syntax/Parser.h"

using namespace cmm;
using namespace cmm::test;

namespace {

std::string divergenceText(const DiffSeedResult &R) {
  std::string Out;
  for (const DiffDivergence &D : R.Divergences)
    if (!D.Expected)
      Out += D.str() + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// The fixed corpus
//===----------------------------------------------------------------------===//

TEST(DiffHarness, FixedSeedCorpusAgrees) {
  // ~25 seeds x 5 strategies x 7 configs x 6 inputs. Seeds are cheap (the
  // generated loops are bounded), so this is the suite's broadest net.
  unsigned AblationSeeds = 0;
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    DiffSeedResult R = diffTestSeed(Seed);
    EXPECT_FALSE(R.hasUnexpected())
        << "seed " << Seed << " diverged:\n" << divergenceText(R);
    EXPECT_GT(R.RunsExecuted, 0u);
    if (R.ablationDiverged())
      ++AblationSeeds;
  }
  // Table 3: dropping the `also` edges MUST miscompile some programs —
  // otherwise the ablation check has lost its teeth.
  EXPECT_GE(AblationSeeds, 1u);
}

TEST(DiffHarness, WrongProgramsAgreeAcrossStrategies) {
  // Unguarded divisions make some inputs go wrong; every strategy must go
  // wrong identically (same reason), and halting inputs must still agree.
  DiffOptions Opts;
  Opts.Gen.WrongChancePct = 30;
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    DiffSeedResult R = diffTestSeed(Seed, Opts);
    EXPECT_FALSE(R.hasUnexpected())
        << "seed " << Seed << " diverged:\n" << divergenceText(R);
  }
}

TEST(DiffHarness, ScheduledRenderingMatchesDirect) {
  // The scheduled-vs-direct column (CheckScheduled): every strategy's
  // computation, spawned as a green thread under the M:N scheduler, must
  // reproduce the direct reference outcome — including seeds whose
  // programs go wrong (WrongChancePct), which must fail the schedule with
  // the identical reason. Kept small here (the full sweep carries
  // --scheduled); skipping the optimizer/backend columns keeps it a
  // scheduler check, not a rerun of the corpus test.
  DiffOptions Opts;
  Opts.CheckScheduled = true;
  Opts.CheckVm = false;
  Opts.CheckStats = false;
  Opts.CheckRoundTrip = false;
  Opts.CheckSerialize = false;
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    DiffSeedResult R = diffTestSeed(Seed, Opts);
    EXPECT_FALSE(R.hasUnexpected())
        << "seed " << Seed << " diverged:\n" << divergenceText(R);
  }
  Opts.Gen.WrongChancePct = 30;
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    DiffSeedResult R = diffTestSeed(Seed, Opts);
    EXPECT_FALSE(R.hasUnexpected())
        << "wrong-seed " << Seed << " diverged:\n" << divergenceText(R);
  }
}

TEST(DiffHarness, HandlerFreeProgramsAgree) {
  DiffOptions Opts;
  Opts.Gen.UseHandlers = false;
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    DiffSeedResult R = diffTestSeed(Seed, Opts);
    EXPECT_FALSE(R.hasUnexpected())
        << "seed " << Seed << " diverged:\n" << divergenceText(R);
  }
}

//===----------------------------------------------------------------------===//
// The minimizer
//===----------------------------------------------------------------------===//

TEST(DiffHarness, MinimizerEmitsLoadableRepro) {
  // Seed 3's ablation divergence is stable; whatever the minimizer keeps of
  // it must parse, compile, and survive the printer round trip — that is
  // the contract that makes reproducers worth checking in.
  std::optional<DiffRepro> R = minimizeDivergence(3);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->Source.empty());
  EXPECT_NE(R->Source.find("cmmdiff reproducer"), std::string::npos);
  auto Prog = compile({R->Source});
  EXPECT_TRUE(Prog);
}

//===----------------------------------------------------------------------===//
// Printer round trip: print . parse . print is a fixed point
//===----------------------------------------------------------------------===//

TEST(AstRoundTrip, RandomProgramsReachPrinterFixedPoint) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    for (DispatchTechnique T : AllDispatchTechniques) {
      RandomProgramOptions G;
      G.Strategy = T;
      std::string Src = generateRandomProgram(Seed, G);
      DiagnosticEngine D1;
      Parser P1(Src, D1);
      Module M1 = P1.parseModule();
      ASSERT_FALSE(D1.hasErrors())
          << "seed " << Seed << " [" << dispatchTechniqueName(T)
          << "] does not parse:\n" << D1.str();
      std::string Once = printModule(M1);
      DiagnosticEngine D2;
      Parser P2(Once, D2);
      Module M2 = P2.parseModule();
      ASSERT_FALSE(D2.hasErrors())
          << "printed form does not re-parse:\n" << D2.str();
      EXPECT_EQ(printModule(M2), Once)
          << "seed " << Seed << " [" << dispatchTechniqueName(T)
          << "] is not a printer fixed point";
    }
}

//===----------------------------------------------------------------------===//
// Regression: the callee-saves flush bug (seeds 24, 81, 185)
//===----------------------------------------------------------------------===//

// cmmdiff's first catch. A CalleeSaves set stays in effect until the next
// CalleeSaves node, so a cut-edged call whose own placement was empty could
// still execute with handler-live variables in registers, left there by an
// *earlier* call's node on the same path — and the cut kills them. The
// placement pass now flushes such calls with an empty CalleeSaves node.
// The seeds that caught it must stay clean under the full matrix:
TEST(DiffHarness, CalleeSavesFlushSeedsStayClean) {
  for (uint64_t Seed : {uint64_t(24), uint64_t(81), uint64_t(185)}) {
    DiffSeedResult R = diffTestSeed(Seed);
    EXPECT_FALSE(R.hasUnexpected())
        << "seed " << Seed << " regressed:\n" << divergenceText(R);
  }
}

// The minimized reproducer, also checked in as
// tests/repro_calleesaves_cut.cmm: seed 24's cut/generated rendering. f1's
// first call (no cut edges) parks b in a callee-saves register; its second
// call reaches continuation k, which needs b, and the placement for that
// call chose nothing — so before the fix nothing took b out of the
// register and the cut killed it ("use of unbound variable 'b'").
const char *CalleeSavesRepro = R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[64]; }
f0(bits32 x) {
  bits32 a, b, c, d, t, u, kv, r;
  a = x + 3;
  b = x * 4;
  c = (x ^ 0) & 7;
  d = x - 5;
  a = 6;
  c = a;
  x = %%modu(a, (2) | 1) also aborts;
  c = %lo32(%zx64((x & c)) + %sx64((5 | b)));
  if (c) < ((d | c)) {
    x = ((a + 0) & 3);
  } else {
    d = ((a + 7) & %leu(a, x));
  }
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  r = f1((a - a)) also cuts to k also aborts;
  exn_top = exn_top - 4;
  x = %%divu((b + 3), (c) | 1) also aborts;
  a = x;
  x = %%modu(%lo32(%zx64(x) + %sx64(d)), ((1 + x)) | 1) also aborts;
  return ((r + (%leu(d, 5) & a)) ^ b);
  continuation k(t, u):
    d = ((a + b) ^ t) + (u * 3);
    return (d + 99);
}
f1(bits32 x) {
  bits32 a, b, c, d, t, u, kv, r;
  a = x + 2;
  b = x * 4;
  c = (x ^ 0) & 7;
  d = x - 2;
  c = 5;
  loop0:
  if (c) > (0) {
    d = x;
    c = c - 1;
    goto loop0;
  }
  a = %%divu(c, ((x | x)) | 1) also aborts;
  if (c) == (x) {
    x = b;
  } else {
    x = ((2 * c) - (c + d));
  }
  b = ((c + b) ^ (x - d));
  if ((9 | c)) <= ((6 + 7)) {
    a = ((7 - 2) - (b - x));
  } else {
    d = (a + a);
  }
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  r = f2(8) also cuts to k also aborts;
  exn_top = exn_top - 4;
  a = ((5 * a) * (9 - 5));
  c = ((d - d) ^ (x | d));
  a = b;
  return ((r + (a & 1)) ^ b);
  continuation k(t, u):
    d = ((a + b) ^ t) + (u * 3);
    return (d + 39);
}
f2(bits32 x) {
  bits32 a, b, c, d, t, u, kv, r;
  a = x + 0;
  b = x * 4;
  c = (x ^ 0) & 7;
  d = x - 5;
  x = %%divu((b - x), (4) | 1) also aborts;
  a = (b - 3);
  c = 5;
  loop1:
  if (c) > (0) {
    b = x;
    c = c - 1;
    goto loop1;
  }
  d = 8;
  c = %%divu((5 ^ b), (3) | 1) also aborts;
  r = f3((a * 6)) also aborts;
  a = (%lo32(%zx64(5) + %sx64(x)) - x);
  b = %modu((a + 9), ((d * 5)) | 1);
  c = ((b ^ 2) | (c ^ 0));
  return ((r + 2) ^ b);
}
f3(bits32 x) {
  bits32 a, b, c, d, t, u, kv, r;
  a = x + 0;
  b = x * 3;
  c = (x ^ 0) & 7;
  d = x - 3;
  x = ((8 + 2) - (c + b));
  d = b;
  c = %%divu(%ltu(7, x), (3) | 1) also aborts;
  x = 2;
  if ((5 | x)) <= ((8 - 0)) {
    b = b;
  } else {
    b = a;
  }
  if ((c) & 3) == (0) {
    kv = bits32[exn_top];
    exn_top = exn_top - 4;
    cut to kv(11, (a - 3));
  }
  return (%ltu(c, 4));
}
main(bits32 x) {
  bits32 r, t, u;
  exn_top = exn_stack;
  r = f0(x);
  return (r);
}
)";

TEST(CalleeSavesRegression, FlushPreservesCutKilledValues) {
  auto Reference = compile({CalleeSavesRepro});
  ASSERT_TRUE(Reference);
  Machine RM(*Reference);
  std::vector<Value> Want = runToHalt(RM, "main", {b32(0)});
  ASSERT_EQ(Want.size(), 1u);
  EXPECT_EQ(Want[0], b32(566));

  auto Optimized = compile({CalleeSavesRepro});
  ASSERT_TRUE(Optimized);
  OptOptions Opts;
  Opts.PlaceCalleeSaves = true;
  OptReport R = optimizeProgram(*Optimized, Opts);
  // The hazardous call in f1 must have been flushed...
  EXPECT_GE(R.CalleeSaves.CutHazardFlushes, 1u);
  // ...and the soundness audit must find no live value a cut can kill.
  for (const auto &P : Optimized->Procs)
    EXPECT_EQ(countKilledLiveValues(*P, *Optimized), 0u)
        << "in " << Optimized->Names->spelling(P->Name);
  Machine OM(*Optimized);
  EXPECT_EQ(runToHalt(OM, "main", {b32(0)}), Want);
}

} // namespace
