//===- tests/SchedTest.cpp - Green-threads scheduler conformance ----------===//
//
// Part of cmmex (see DESIGN.md). Pins the M:N scheduler's contracts
// (sched/Scheduler.h): spawn/join/channel/timer semantics; determinism —
// identical observables with 1 driver and with N drivers, and under any
// slice-fuel split, on all three backends; scheduled-vs-direct parity (a
// computation's results under the scheduler equal its direct run); Wrong
// propagation; loud deadlock detection; virtual-time sleeps; the >= 10k
// green-thread acceptance workload; and the engine's Job::Sched embedding.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "engine/Engine.h"
#include "rts/SchedFormat.h"
#include "sched/Scheduler.h"

using namespace cmm;
using namespace cmm::sched;
using cmm::test::b32;

namespace {

std::string T(uint64_t Tag) { return schedTagLiteral(Tag); }

/// main spawns a worker computing n + 1 and joins it.
std::string spawnJoinSource() {
  return "export main;\n"
         "worker(bits32 x) {\n"
         "  return (x + 1);\n"
         "}\n"
         "main(bits32 n) {\n"
         "  bits32 t, r;\n"
         "  t = yield(" + T(SchedTagSpawn) + ", worker, n);\n"
         "  r = yield(" + T(SchedTagJoin) + ", t);\n"
         "  return (r);\n"
         "}\n";
}

/// A producer streams squares 0..n-1 plus a 999999 sentinel over a bounded
/// channel (capacity 2, so it parks); main sums. sum(i^2, i<5) = 30.
std::string pipelineSource() {
  return "export main;\n"
         "producer(bits32 c, bits32 n) {\n"
         "  bits32 i;\n"
         "  i = 0;\n"
         "loop:\n"
         "  if i == n {\n"
         "    yield(" + T(SchedTagChanSend) + ", c, 999999);\n"
         "    return (0);\n"
         "  }\n"
         "  yield(" + T(SchedTagChanSend) + ", c, i * i);\n"
         "  i = i + 1;\n"
         "  goto loop;\n"
         "}\n"
         "main(bits32 n) {\n"
         "  bits32 c, t, v, sum;\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 2);\n"
         "  t = yield(" + T(SchedTagSpawn) + ", producer, c, n);\n"
         "  sum = 0;\n"
         "loop:\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  if v == 999999 { goto done; }\n"
         "  sum = sum + v;\n"
         "  goto loop;\n"
         "done:\n"
         "  return (sum);\n"
         "}\n";
}

/// Three sleepers with distinct virtual-time deadlines report in deadline
/// order regardless of spawn order: 10*10000 + 20*100 + 30 = 102030.
std::string sleepersSource() {
  return "export main;\n"
         "sleeper(bits32 c, bits32 ticks) {\n"
         "  yield(" + T(SchedTagSleep) + ", ticks);\n"
         "  yield(" + T(SchedTagChanSend) + ", c, ticks);\n"
         "  return (0);\n"
         "}\n"
         "main() {\n"
         "  bits32 c, t, a, b, d;\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 4);\n"
         "  t = yield(" + T(SchedTagSpawn) + ", sleeper, c, 30);\n"
         "  t = yield(" + T(SchedTagSpawn) + ", sleeper, c, 10);\n"
         "  t = yield(" + T(SchedTagSpawn) + ", sleeper, c, 20);\n"
         "  a = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  b = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  d = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  return (a * 10000 + b * 100 + d);\n"
         "}\n";
}

/// Receives on a channel nobody will ever send to.
std::string deadlockSource() {
  return "export main;\n"
         "main() {\n"
         "  bits32 c, v;\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 1);\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  return (v);\n"
         "}\n";
}

/// The spawned worker reads an unbound local (goes wrong); main never
/// learns — the schedule must fail with the worker's precise reason.
std::string wrongWorkerSource() {
  return "export main;\n"
         "worker(bits32 x) {\n"
         "  bits32 a, b;\n"
         "  if x == 0 { a = 1; }\n"
         "  b = a + 1;\n"
         "  return (b);\n"
         "}\n"
         "main() {\n"
         "  bits32 t, r;\n"
         "  t = yield(" + T(SchedTagSpawn) + ", worker, 1);\n"
         "  r = yield(" + T(SchedTagJoin) + ", t);\n"
         "  return (r);\n"
         "}\n";
}

/// n workers each send their index; main drains and sums: n*(n-1)/2.
std::string fanInSource() {
  return "export main;\n"
         "worker(bits32 c, bits32 x) {\n"
         "  yield(" + T(SchedTagChanSend) + ", c, x);\n"
         "  return (0);\n"
         "}\n"
         "main(bits32 n) {\n"
         "  bits32 c, i, t, v, sum;\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 64);\n"
         "  i = 0;\n"
         "spawnloop:\n"
         "  if i == n { goto drain; }\n"
         "  t = yield(" + T(SchedTagSpawn) + ", worker, c, i);\n"
         "  i = i + 1;\n"
         "  goto spawnloop;\n"
         "drain:\n"
         "  sum = 0;\n"
         "  i = 0;\n"
         "recvloop:\n"
         "  if i == n { goto done; }\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  sum = sum + v;\n"
         "  i = i + 1;\n"
         "  goto recvloop;\n"
         "done:\n"
         "  return (sum);\n"
         "}\n";
}

/// Direct-run twin of fanInSource (no scheduler): same arithmetic, same
/// result — the scheduled-vs-direct observable.
std::string fanInDirectSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 i, sum;\n"
         "  sum = 0;\n"
         "  i = 0;\n"
         "loop:\n"
         "  if i == n { return (sum); }\n"
         "  sum = sum + i;\n"
         "  i = i + 1;\n"
         "  goto loop;\n"
         "}\n";
}

SchedResult runSched(const IrProgram &Prog, engine::Backend B,
                     SchedOptions Opts, std::string_view Entry,
                     std::vector<Value> Args,
                     Scheduler::SubmitFn Submit = {}) {
  Scheduler S([&Prog, B] { return engine::makeExecutor(B, Prog); }, Opts,
              std::move(Submit));
  return S.run(Entry, std::move(Args));
}

class SchedBackendTest : public ::testing::TestWithParam<engine::Backend> {};

TEST_P(SchedBackendTest, SpawnJoinRoundTrip) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({spawnJoinSource()});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, GetParam(), {}, "main", {b32(41)});
  ASSERT_TRUE(R.ok()) << R.WrongReason;
  EXPECT_EQ(R.Results, std::vector<Value>{b32(42)});
  EXPECT_EQ(R.ThreadsSpawned, 2u);
}

TEST_P(SchedBackendTest, BoundedChannelPipeline) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({pipelineSource()});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, GetParam(), {}, "main", {b32(5)});
  ASSERT_TRUE(R.ok()) << R.WrongReason;
  EXPECT_EQ(R.Results, std::vector<Value>{b32(30)});
  // n sends + the sentinel, each with a matching receive.
  EXPECT_EQ(R.ChanSends, 6u);
  EXPECT_EQ(R.ChanRecvs, 6u);
}

TEST_P(SchedBackendTest, VirtualTimeOrdersSleepers) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({sleepersSource()});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, GetParam(), {}, "main", {});
  ASSERT_TRUE(R.ok()) << R.WrongReason;
  EXPECT_EQ(R.Results, std::vector<Value>{b32(102030)});
  EXPECT_EQ(R.TimerWaits, 3u);
}

TEST_P(SchedBackendTest, DeadlockIsLoud) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({deadlockSource()});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, GetParam(), {}, "main", {});
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Deadlocked);
  EXPECT_EQ(R.Status, MachineStatus::Running);
  EXPECT_NE(R.WrongReason.find("deadlock"), std::string::npos);
}

TEST_P(SchedBackendTest, WorkerWrongFailsScheduleWithItsReason) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({wrongWorkerSource()});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, GetParam(), {}, "main", {});
  EXPECT_EQ(R.Status, MachineStatus::Wrong);
  EXPECT_FALSE(R.WrongReason.empty());
  // The reason is the worker's own goes-wrong reason, not a scheduler
  // wrapper: the same observable a direct run of worker(1) produces.
  std::unique_ptr<Executor> M =
      engine::makeExecutor(GetParam(), *Prog);
  M->start("worker", {b32(1)});
  ASSERT_EQ(M->run(), MachineStatus::Wrong);
  EXPECT_EQ(R.WrongReason, M->wrongReason());
}

TEST_P(SchedBackendTest, FuelSplitParity) {
  // The cooperative quantum is unobservable: any SliceFuel produces the
  // same results, switch-for-switch the same counters with one driver.
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({pipelineSource()});
  ASSERT_TRUE(Prog);
  SchedOptions Big;
  Big.SliceFuel = 1 << 20;
  SchedResult R0 = runSched(*Prog, GetParam(), Big, "main", {b32(7)});
  ASSERT_TRUE(R0.ok()) << R0.WrongReason;
  for (uint64_t Fuel : {1ull, 3ull, 17ull, 1000ull}) {
    SchedOptions O;
    O.SliceFuel = Fuel;
    SchedResult R = runSched(*Prog, GetParam(), O, "main", {b32(7)});
    ASSERT_TRUE(R.ok()) << "fuel=" << Fuel << ": " << R.WrongReason;
    EXPECT_EQ(R.Results, R0.Results) << "fuel=" << Fuel;
    EXPECT_EQ(R.StepsTotal, R0.StepsTotal) << "fuel=" << Fuel;
    EXPECT_EQ(R.ChanSends, R0.ChanSends) << "fuel=" << Fuel;
  }
}

TEST_P(SchedBackendTest, ScheduledMatchesDirectRun) {
  std::unique_ptr<IrProgram> Sched = cmm::test::compile({fanInSource()});
  std::unique_ptr<IrProgram> Direct =
      cmm::test::compile({fanInDirectSource()});
  ASSERT_TRUE(Sched && Direct);
  SchedResult R = runSched(*Sched, GetParam(), {}, "main", {b32(50)});
  ASSERT_TRUE(R.ok()) << R.WrongReason;

  std::unique_ptr<Executor> M = engine::makeExecutor(GetParam(), *Direct);
  M->start("main", {b32(50)});
  ASSERT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(R.Results, M->argArea());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SchedBackendTest,
                         ::testing::ValuesIn(engine::AllBackends),
                         [](const auto &Info) {
                           return std::string(
                               engine::backendName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Multi-driver determinism and scale
//===----------------------------------------------------------------------===//

TEST(SchedTest, MultiDriverObservablesMatchSingleDriver) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({fanInSource()});
  ASSERT_TRUE(Prog);
  SchedResult One =
      runSched(*Prog, engine::Backend::Vm, {}, "main", {b32(200)});
  ASSERT_TRUE(One.ok()) << One.WrongReason;

  engine::ThreadPool Pool(4);
  SchedOptions O;
  O.Drivers = 4;
  SchedResult Many = runSched(
      *Prog, engine::Backend::Vm, O, "main", {b32(200)},
      [&Pool](std::function<void()> Task) { Pool.submit(std::move(Task)); });
  ASSERT_TRUE(Many.ok()) << Many.WrongReason;

  // Interleavings differ; observables must not.
  EXPECT_EQ(Many.Results, One.Results);
  EXPECT_EQ(Many.ThreadsSpawned, One.ThreadsSpawned);
  EXPECT_EQ(Many.ChanSends, One.ChanSends);
  EXPECT_EQ(Many.ChanRecvs, One.ChanRecvs);
  EXPECT_EQ(Many.StepsTotal, One.StepsTotal);
}

TEST(SchedTest, TenThousandGreenThreadsComplete) {
  // The acceptance workload: >= 10k green threads over one channel, on a
  // multi-driver pool, byte-identical observables to the single-driver
  // schedule. sum(0..9999) = 49995000.
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({fanInSource()});
  ASSERT_TRUE(Prog);
  const uint64_t N = 10000;

  SchedResult One =
      runSched(*Prog, engine::Backend::Vm, {}, "main", {b32(N)});
  ASSERT_TRUE(One.ok()) << One.WrongReason;
  EXPECT_EQ(One.Results, std::vector<Value>{b32(49995000)});
  EXPECT_EQ(One.ThreadsSpawned, N + 1);
  EXPECT_EQ(One.ChanSends, N);

  engine::ThreadPool Pool(4);
  SchedOptions O;
  O.Drivers = 4;
  SchedResult Many = runSched(
      *Prog, engine::Backend::Vm, O, "main", {b32(N)},
      [&Pool](std::function<void()> Task) { Pool.submit(std::move(Task)); });
  ASSERT_TRUE(Many.ok()) << Many.WrongReason;
  EXPECT_EQ(Many.Results, One.Results);
  EXPECT_EQ(Many.ThreadsSpawned, One.ThreadsSpawned);
  EXPECT_EQ(Many.StepsTotal, One.StepsTotal);
}

TEST(SchedTest, SpawnGuardFailsLoudly) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({fanInSource()});
  ASSERT_TRUE(Prog);
  SchedOptions O;
  O.MaxThreads = 16;
  SchedResult R =
      runSched(*Prog, engine::Backend::Walk, O, "main", {b32(100)});
  EXPECT_EQ(R.Status, MachineStatus::Wrong);
  EXPECT_NE(R.WrongReason.find("thread limit"), std::string::npos);
}

TEST(SchedTest, PerThreadFuelFailsSchedule) {
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({fanInSource()});
  ASSERT_TRUE(Prog);
  SchedOptions O;
  O.SliceFuel = 64;
  O.MaxStepsPerThread = 200; // main's spawn/drain loops need far more
  SchedResult R =
      runSched(*Prog, engine::Backend::Walk, O, "main", {b32(100)});
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.FuelExhausted);
  EXPECT_EQ(R.Status, MachineStatus::Running);
}

//===----------------------------------------------------------------------===//
// Exception dispatch inside green threads
//===----------------------------------------------------------------------===//

TEST(SchedTest, UnhandledNonSchedYieldFailsSchedule) {
  // Without a dispatcher, an exception-style yield inside a green thread
  // is an unhandled yield — reported, not hung.
  std::string Src = "export main;\n"
                    "main() {\n"
                    "  yield(7) also aborts;\n"
                    "  return (0);\n"
                    "}\n";
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({Src});
  ASSERT_TRUE(Prog);
  SchedResult R = runSched(*Prog, engine::Backend::Walk, {}, "main", {});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.WrongReason.find("unhandled yield"), std::string::npos);
}

TEST(SchedTest, UnwindDispatcherServicesGreenThreads) {
  // The Figure 9 workload raising through the run-time system, spawned as
  // a green thread: the scheduler's per-thread UnwindingDispatcher must
  // produce the same 1099 observable as a direct run under the engine's
  // dispatcher.
  std::string Bench = dispatchWorkloadSource(DispatchTechnique::UnwindRuntime);
  std::string Main =
      "import bench;\n"
      "export sched_main;\n"
      "sched_main(bits32 depth) {\n"
      "  bits32 t, r;\n"
      "  t = yield(" + T(SchedTagSpawn) + ", bench, depth, 1);\n"
      "  r = yield(" + T(SchedTagJoin) + ", t);\n"
      "  return (r);\n"
      "}\n";
  std::unique_ptr<IrProgram> Prog = cmm::test::compile({Bench, Main});
  ASSERT_TRUE(Prog);
  SchedOptions O;
  O.Exn = ExnDispatch::Unwind;
  SchedResult R =
      runSched(*Prog, engine::Backend::Vm, O, "sched_main", {b32(6)});
  ASSERT_TRUE(R.ok()) << R.WrongReason;
  EXPECT_EQ(R.Results, std::vector<Value>{b32(1099)});
}

//===----------------------------------------------------------------------===//
// Engine embedding (Job::Sched)
//===----------------------------------------------------------------------===//

TEST(SchedTest, EngineRunsScheduledJobs) {
  engine::EngineOptions EO;
  EO.Threads = 4;
  engine::Engine Eng(EO);
  engine::Job J;
  J.Request.Sources = {fanInSource()};
  J.B = engine::Backend::Vm;
  J.Args = {b32(300)};
  J.Sched.Enabled = true;
  J.Sched.Drivers = 4;
  engine::JobResult R = Eng.wait(Eng.submit(J));
  ASSERT_TRUE(R.ok()) << R.CompileError << R.WrongReason;
  EXPECT_EQ(R.Results, std::vector<Value>{b32(300 * 299 / 2)});
  EXPECT_EQ(R.SchedThreads, 301u);
  EXPECT_GT(R.SchedSwitches, 0u);
  EXPECT_GT(R.MachineStats.Steps, 0u);

  // sched.* metrics landed in the engine registry.
  EXPECT_EQ(Eng.metrics().counter("sched.threads_spawned").value(), 301u);
  EXPECT_EQ(Eng.metrics().counter("sched.runs").value(), 1u);
  EXPECT_EQ(Eng.metrics().gauge("sched.threads_live").value(), 0);
}

TEST(SchedTest, EngineReportsScheduledDeadlock) {
  engine::Engine Eng;
  engine::Job J;
  J.Request.Sources = {deadlockSource()};
  J.Sched.Enabled = true;
  engine::JobResult R = Eng.runJob(J);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Deadlocked);
  EXPECT_EQ(R.Status, MachineStatus::Running);
  EXPECT_EQ(Eng.metrics().counter("sched.deadlocks").value(), 1u);
}

} // namespace
