//===- tests/AnalysisTest.cpp - Dataflow, liveness, dominators ------------===//
//
// Part of cmmex (see DESIGN.md). Unit tests of the Table 3 fact layer and
// the analyses built on it, on small graphs with known answers.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "opt/Dominators.h"
#include "opt/Liveness.h"
#include "opt/Ssa.h"

using namespace cmm;
using namespace cmm::test;

namespace {

struct ProcUnderTest {
  std::unique_ptr<IrProgram> Prog;
  IrProc *P = nullptr;
  LocUniverse U;

  unsigned loc(const char *Name) {
    Symbol S = Prog->Names->lookup(Name);
    EXPECT_TRUE(S) << Name;
    std::optional<unsigned> I = U.varIndex(S);
    EXPECT_TRUE(I.has_value()) << Name;
    return *I;
  }

  Node *findNode(Node::Kind K, unsigned Skip = 0) {
    for (Node *N : reachableNodes(*P))
      if (N->kind() == K) {
        if (Skip == 0)
          return N;
        --Skip;
      }
    return nullptr;
  }
};

ProcUnderTest build(const char *Src, const char *ProcName) {
  ProcUnderTest T;
  T.Prog = compile({Src});
  if (!T.Prog)
    return T;
  T.P = T.Prog->findProc(ProcName);
  EXPECT_TRUE(T.P);
  T.U = LocUniverse::forProc(*T.P, *T.Prog);
  return T;
}

//===----------------------------------------------------------------------===//
// Table 3 facts
//===----------------------------------------------------------------------===//

TEST(Facts, AssignUsesFreeVarsDefinesTarget) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 a, bits32 b) {
  bits32 c;
  c = a + bits32[b];
  return (c);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  Node *N = T.findNode(Node::Kind::Assign);
  ASSERT_TRUE(N);
  NodeFacts F = computeFacts(*N, T.U);
  EXPECT_TRUE(F.Use.test(T.loc("a")));
  EXPECT_TRUE(F.Use.test(T.loc("b")));
  EXPECT_TRUE(F.Use.test(T.U.memIndex())); // the load reads M
  EXPECT_TRUE(F.Def.test(T.loc("c")));
  EXPECT_FALSE(F.Def.test(T.loc("a")));
}

TEST(Facts, StoreReadsAndWritesMemory) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 a) {
  bits32[a] = a + 1;
  return;
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  Node *N = T.findNode(Node::Kind::Store);
  ASSERT_TRUE(N);
  NodeFacts F = computeFacts(*N, T.U);
  EXPECT_TRUE(F.Use.test(T.U.memIndex()));
  EXPECT_TRUE(F.Def.test(T.U.memIndex()));
  EXPECT_TRUE(F.Use.test(T.loc("a")));
}

TEST(Facts, CopyInCopiesFromArgumentArea) {
  ProcUnderTest T = build(R"(
export f;
g() { return (1, 2); }
f() {
  bits32 x, y;
  x, y = g();
  return (x + y);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  // The CopyIn for the call results (skip the parameter CopyIn).
  Node *N = T.findNode(Node::Kind::CopyIn, 1);
  ASSERT_TRUE(N);
  NodeFacts F = computeFacts(*N, T.U);
  EXPECT_TRUE(F.Def.test(T.loc("x")));
  EXPECT_TRUE(F.Def.test(T.loc("y")));
  EXPECT_TRUE(F.Use.test(T.U.argIndex(0)));
  EXPECT_TRUE(F.Use.test(T.U.argIndex(1)));
  ASSERT_EQ(F.Copies.size(), 2u);
  EXPECT_EQ(F.Copies[0].first, T.loc("x"));
  EXPECT_EQ(F.Copies[0].second, T.U.argIndex(0));
}

TEST(Facts, CalleeSavesHasNoDataflowEffect) {
  ProcUnderTest T = build("export f;\nf() { return; }\n", "f");
  ASSERT_TRUE(T.P);
  auto *CS = T.P->make<CalleeSavesNode>();
  NodeFacts F = computeFacts(*CS, T.U);
  EXPECT_EQ(F.Use.count(), 0u);
  EXPECT_EQ(F.Def.count(), 0u);
}

TEST(Facts, ExprCanFailClassification) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 a, bits32 b) {
  bits32 x, y, z;
  x = a + b * 3;
  y = a / b;
  z = %modu(a, b);
  return (x + y + z);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  const auto *A0 = cast<AssignNode>(T.findNode(Node::Kind::Assign, 0));
  const auto *A1 = cast<AssignNode>(T.findNode(Node::Kind::Assign, 1));
  const auto *A2 = cast<AssignNode>(T.findNode(Node::Kind::Assign, 2));
  EXPECT_FALSE(exprCanFail(A0->Value, *T.Prog->Names));
  EXPECT_TRUE(exprCanFail(A1->Value, *T.Prog->Names));
  EXPECT_TRUE(exprCanFail(A2->Value, *T.Prog->Names));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

const char *handlerLiveSource() {
  return R"(
export f;
g() { return (0); }
f(bits32 a) {
  bits32 y, r, t;
  y = a * 2;
  r = g() also cuts to k also aborts;
  return (r);
continuation k(t):
  return (y + t);
}
)";
}

TEST(Liveness, HandlerUseKeepsValueLiveAcrossCall) {
  ProcUnderTest T = build(handlerLiveSource(), "f");
  ASSERT_TRUE(T.P);
  Liveness L = computeLiveness(*T.P, T.U, /*WithExceptionalEdges=*/true);
  Node *Call = T.findNode(Node::Kind::Call);
  ASSERT_TRUE(Call);
  EXPECT_TRUE(L.LiveOut[Call->Id].test(T.loc("y")));
  EXPECT_TRUE(L.LiveIn[Call->Id].test(T.loc("y")));
}

TEST(Liveness, WithoutExceptionalEdgesTheValueLooksDead) {
  ProcUnderTest T = build(handlerLiveSource(), "f");
  ASSERT_TRUE(T.P);
  Liveness L = computeLiveness(*T.P, T.U, /*WithExceptionalEdges=*/false);
  Node *Call = T.findNode(Node::Kind::Call);
  ASSERT_TRUE(Call);
  EXPECT_FALSE(L.LiveOut[Call->Id].test(T.loc("y")));
}

TEST(Liveness, ArgumentAreaDiesAtCalls) {
  // A[i] holds arguments up to the call; every outgoing edge redefines it,
  // so A is never live across a call.
  ProcUnderTest T = build(R"(
export f;
g(bits32 x) { return (x); }
f(bits32 a) {
  bits32 r;
  r = g(a);
  return (r);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  Liveness L = computeLiveness(*T.P, T.U, true);
  Node *Call = T.findNode(Node::Kind::Call);
  ASSERT_TRUE(Call);
  EXPECT_TRUE(L.LiveIn[Call->Id].test(T.U.argIndex(0))); // argument
  EXPECT_FALSE(L.LiveOut[Call->Id].test(T.U.argIndex(0)));
}

TEST(Liveness, LoopKeepsInductionVariableLive) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 n) {
  bits32 s;
  s = 0;
loop:
  if n == 0 { return (s); }
  s = s + n;
  n = n - 1;
  goto loop;
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  Liveness L = computeLiveness(*T.P, T.U, true);
  Node *Branch = T.findNode(Node::Kind::Branch);
  ASSERT_TRUE(Branch);
  EXPECT_TRUE(L.LiveIn[Branch->Id].test(T.loc("n")));
  EXPECT_TRUE(L.LiveIn[Branch->Id].test(T.loc("s")));
}

//===----------------------------------------------------------------------===//
// May-σ
//===----------------------------------------------------------------------===//

TEST(MaySigma, PropagatesFromCalleeSavesNodes) {
  ProcUnderTest T = build(R"(
export f;
g() { return (0); }
f(bits32 a) {
  bits32 y, r;
  y = a;
  r = g();
  return (y + r);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  // Manually insert a CalleeSaves {y} before the call, as the pass would.
  Node *Call = T.findNode(Node::Kind::Call);
  ASSERT_TRUE(Call);
  auto *CS = T.P->make<CalleeSavesNode>();
  CS->Saved.push_back(T.Prog->Names->lookup("y"));
  replaceAllSuccessorUses(*T.P, Call, CS);
  CS->Next = Call;

  LocUniverse U2 = LocUniverse::forProc(*T.P, *T.Prog);
  std::vector<BitVector> Sigma = computeMaySigma(*T.P, U2);
  std::optional<unsigned> Y = U2.varIndex(T.Prog->Names->lookup("y"));
  ASSERT_TRUE(Y.has_value());
  EXPECT_FALSE(Sigma[CS->Id].test(*Y));  // before the node: not yet saved
  EXPECT_TRUE(Sigma[Call->Id].test(*Y)); // at the call: saved
}

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

TEST(Dominators, DiamondAndLoop) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 n) {
  bits32 s;
  s = 0;
loop:
  if n == 0 {
    s = s + 1;
  } else {
    s = s + 2;
  }
  n = n - 1;
  if n > 0 { goto loop; }
  return (s);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  DomInfo D = computeDominators(*T.P);
  Node *Entry = T.P->EntryPoint;
  Node *B0 = T.findNode(Node::Kind::Branch, 0); // the diamond head
  ASSERT_TRUE(B0);
  Node *Then = cast<BranchNode>(B0)->TrueDst;
  Node *Else = cast<BranchNode>(B0)->FalseDst;
  ASSERT_TRUE(Then && Else);
  ASSERT_NE(Then, Else);
  EXPECT_TRUE(D.dominates(Entry, B0));
  EXPECT_TRUE(D.dominates(B0, Then));
  EXPECT_TRUE(D.dominates(B0, Else));
  EXPECT_FALSE(D.dominates(Then, Else));
  // The join after the diamond is in both branches' dominance frontier.
  Node *Join = cast<AssignNode>(Then)->Next;
  ASSERT_TRUE(Join);
  auto InFrontier = [&](Node *N) {
    const auto &F = D.Frontier[N->Id];
    return std::find(F.begin(), F.end(), Join) != F.end();
  };
  EXPECT_TRUE(InFrontier(Then));
  EXPECT_TRUE(InFrontier(Else));
}

TEST(Dominators, ExceptionalEdgesReachHandlers) {
  ProcUnderTest T = build(handlerLiveSource(), "f");
  ASSERT_TRUE(T.P);
  DomInfo D = computeDominators(*T.P);
  // Every node, including the handler CopyIn, is reachable.
  for (Node *N : reachableNodes(*T.P))
    EXPECT_TRUE(D.isReachable(N)) << "n" << N->Id;
  // The call dominates the handler (the only way in is the cut edge).
  Node *Call = T.findNode(Node::Kind::Call);
  Node *Handler = nullptr;
  for (const auto &[Name, C] : cast<EntryNode>(T.P->EntryPoint)->Conts) {
    (void)Name;
    Handler = C;
  }
  ASSERT_TRUE(Call && Handler);
  EXPECT_TRUE(D.dominates(Call, Handler));
}

//===----------------------------------------------------------------------===//
// SSA numbering on a join
//===----------------------------------------------------------------------===//

TEST(Ssa, PhiAtJoinMergesBranchVersions) {
  ProcUnderTest T = build(R"(
export f;
f(bits32 n) {
  bits32 s;
  if n > 0 {
    s = 1;
  } else {
    s = 2;
  }
  return (s);
}
)",
                          "f");
  ASSERT_TRUE(T.P);
  SsaNumbering Ssa = computeSsa(*T.P, *T.Prog);
  std::optional<unsigned> S =
      Ssa.Universe.varIndex(T.Prog->Names->lookup("s"));
  ASSERT_TRUE(S.has_value());
  // Some node carries a phi for s with two distinct incoming versions.
  bool FoundPhi = false;
  for (size_t Id = 0; Id < T.P->Nodes.size(); ++Id)
    for (const SsaNumbering::Phi &Phi : Ssa.Phis[Id])
      if (Phi.Loc == *S && Phi.Args.size() >= 2 &&
          Phi.Args[0] != Phi.Args[1]) {
        FoundPhi = true;
        EXPECT_NE(Phi.Result, Phi.Args[0]);
        EXPECT_NE(Phi.Result, Phi.Args[1]);
      }
  EXPECT_TRUE(FoundPhi);
}

} // namespace
