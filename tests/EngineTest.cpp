//===- tests/EngineTest.cpp - The batch execution engine ------------------===//
//
// Part of cmmex (see DESIGN.md). Pins the engine subsystem's contracts:
// the work-stealing pool covers every index exactly once; the content-hash
// cache keys on sources AND optimizer configuration, single-flights
// concurrent compiles of one key, and never changes results (only
// throughput); jobs are isolated — compile errors, goes-wrong states, fuel
// exhaustion, and deadlines all travel through JobResult without
// disturbing the batch; and per-job observability tags every event stream
// with the job id.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "engine/ArtifactStore.h"
#include "engine/Engine.h"
#include "support/MiniJson.h"

#include <atomic>
#include <fstream>
#include <sstream>

using namespace cmm;
using namespace cmm::engine;
using cmm::test::b32;

namespace {

const char *addOneSource() {
  return "export main;\n"
         "main(bits32 n) { return (n + 1); }\n";
}

const char *loopForeverSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "loop:\n"
         "  n = n + 1;\n"
         "  goto loop;\n"
         "}\n";
}

const char *goesWrongSource() {
  // Reads an unbound local on the n != 0 path.
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 x, y;\n"
         "  if n == 0 { x = 1; }\n"
         "  y = x + 1;\n"
         "  return (y);\n"
         "}\n";
}

CompileRequest requestFor(const char *Src) {
  CompileRequest Req;
  Req.Sources = {Src};
  return Req;
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr uint64_t N = 10'000;
  std::vector<std::atomic<uint32_t>> Seen(N);
  Pool.parallelFor(0, N, [&](uint64_t I) {
    Seen[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_EQ(Seen[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool Pool(8);
  std::atomic<uint64_t> Count{0};
  Pool.parallelFor(5, 5, [&](uint64_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0u);
  Pool.parallelFor(7, 8, [&](uint64_t I) {
    EXPECT_EQ(I, 7u);
    Count.fetch_add(1);
  });
  EXPECT_EQ(Count.load(), 1u);
}

TEST(ThreadPool, SubmittedTasksAllRun) {
  ThreadPool Pool(4);
  constexpr unsigned N = 500;
  std::atomic<unsigned> Ran{0};
  std::mutex Mu;
  std::condition_variable Cv;
  for (unsigned I = 0; I < N; ++I)
    Pool.submit([&] {
      if (Ran.fetch_add(1) + 1 == N) {
        std::lock_guard<std::mutex> Lock(Mu);
        Cv.notify_all();
      }
    });
  std::unique_lock<std::mutex> Lock(Mu);
  Cv.wait(Lock, [&] { return Ran.load() == N; });
  EXPECT_GE(Pool.tasksExecuted(), uint64_t(N));
}

TEST(ThreadPool, EverySubmitWakesTheSleepingWorker) {
  // One worker, one task per round, waiting for each before the next: the
  // worker drains its queue and blocks every round, so every submit lands
  // in the check-to-block window a lost wakeup would hang.
  ThreadPool Pool(1);
  std::mutex Mu;
  std::condition_variable Cv;
  unsigned Done = 0;
  for (unsigned I = 0; I < 2000; ++I) {
    Pool.submit([&] {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      Cv.notify_all();
    });
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Done == I + 1; });
  }
  EXPECT_EQ(Done, 2000u);
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(EngineCache, KeyDependsOnOptimizerConfiguration) {
  CompileRequest Plain = requestFor(addOneSource());
  CompileRequest Optimized = Plain;
  Optimized.Optimize = true;
  CompileRequest Ablated = Optimized;
  Ablated.Opt.WithExceptionalEdges = false;
  EXPECT_FALSE(cacheKeyFor(Plain) == cacheKeyFor(Optimized));
  EXPECT_FALSE(cacheKeyFor(Optimized) == cacheKeyFor(Ablated));
  EXPECT_TRUE(cacheKeyFor(Plain) == cacheKeyFor(requestFor(addOneSource())));
}

TEST(EngineCache, KeyIsLengthPrefixedAcrossSourceBoundaries) {
  CompileRequest A, B;
  A.Sources = {"ab", "c"};
  B.Sources = {"a", "bc"};
  EXPECT_FALSE(cacheKeyFor(A) == cacheKeyFor(B));
}

TEST(EngineCache, SameSourceDifferentConfigMisses) {
  Engine Eng({.Threads = 1});
  CompileRequest Plain = requestFor(addOneSource());
  CompileRequest Optimized = Plain;
  Optimized.Optimize = true;
  auto A1 = Eng.compile(Plain);
  auto A2 = Eng.compile(Optimized);
  ASSERT_TRUE(A1->ok());
  ASSERT_TRUE(A2->ok());
  EXPECT_NE(A1.get(), A2.get());
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 2u);
  EXPECT_EQ(CS.Hits, 0u);
}

TEST(EngineCache, RepeatedRequestHitsAndSharesTheArtifact) {
  Engine Eng({.Threads = 1});
  auto A1 = Eng.compile(requestFor(addOneSource()));
  auto A2 = Eng.compile(requestFor(addOneSource()));
  EXPECT_EQ(A1.get(), A2.get());
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 1u);
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Lookups, 2u);
}

TEST(EngineCache, ConcurrentSameKeyCompilesExactlyOnce) {
  Engine Eng({.Threads = 8});
  constexpr uint64_t N = 64;
  std::vector<std::shared_ptr<const ProgramArtifact>> Arts(N);
  Eng.pool().parallelFor(0, N, [&](uint64_t I) {
    Arts[I] = Eng.compile(requestFor(addOneSource()));
  });
  for (uint64_t I = 0; I < N; ++I) {
    ASSERT_TRUE(Arts[I] != nullptr);
    EXPECT_EQ(Arts[I].get(), Arts[0].get());
  }
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 1u);
  EXPECT_EQ(CS.Lookups, N);
  EXPECT_EQ(CS.Hits, N - 1);
}

TEST(EngineCache, BytecodeCompilesOncePerArtifact) {
  Engine Eng({.Threads = 4});
  std::vector<Job> Jobs;
  for (unsigned I = 0; I < 8; ++I) {
    Job J;
    J.Request = requestFor(addOneSource());
    J.B = Backend::Vm;
    J.Args = {b32(I)};
    Jobs.push_back(std::move(J));
  }
  std::vector<JobResult> Res = Eng.run(std::move(Jobs));
  for (const JobResult &R : Res)
    ASSERT_TRUE(R.ok()) << R.CompileError;
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 1u);
  EXPECT_EQ(CS.BytecodeCompiles, 1u);
}

TEST(EngineCache, EvictionRecompilesColdKeys) {
  Engine Eng({.Threads = 1, .EnableCache = true, .CacheCapacity = 1});
  CompileRequest A = requestFor(addOneSource());
  CompileRequest B = requestFor(goesWrongSource());
  Eng.compile(A);
  Eng.compile(B); // evicts A (capacity 1)
  Eng.compile(A); // must recompile
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 3u);
  EXPECT_GE(CS.Evictions, 1u);
}

TEST(EngineCache, DisabledCacheIsResultIdenticalToWarmCache) {
  auto RunAll = [](bool EnableCache) {
    EngineOptions EO;
    EO.Threads = 2;
    EO.EnableCache = EnableCache;
    Engine Eng(EO);
    std::vector<Job> Jobs;
    for (const char *Src :
         {addOneSource(), goesWrongSource(), addOneSource()}) {
      Job J;
      J.Request = requestFor(Src);
      J.Args = {b32(6)};
      Jobs.push_back(std::move(J));
    }
    return Eng.run(std::move(Jobs));
  };
  std::vector<JobResult> Cold = RunAll(false);
  std::vector<JobResult> Warm = RunAll(true);
  ASSERT_EQ(Cold.size(), Warm.size());
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_EQ(Cold[I].Status, Warm[I].Status);
    EXPECT_TRUE(Cold[I].Results == Warm[I].Results);
    EXPECT_EQ(Cold[I].WrongReason, Warm[I].WrongReason);
    EXPECT_EQ(Cold[I].MachineStats.Steps, Warm[I].MachineStats.Steps);
  }
}

TEST(EngineCache, CacheHitFlagTravelsThroughTheResult) {
  Engine Eng({.Threads = 1});
  Job J;
  J.Request = requestFor(addOneSource());
  J.Args = {b32(1)};
  JobResult First = Eng.wait(Eng.submit(J));
  JobResult Second = Eng.wait(Eng.submit(J));
  EXPECT_FALSE(First.CacheHit);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_TRUE(First.Results == Second.Results);
}

//===----------------------------------------------------------------------===//
// Jobs
//===----------------------------------------------------------------------===//

TEST(EngineJobs, SubmitWaitRoundTrip) {
  Engine Eng({.Threads = 2});
  Job J;
  J.Request = requestFor(addOneSource());
  J.Args = {b32(41)};
  JobResult R = Eng.wait(Eng.submit(std::move(J)));
  ASSERT_TRUE(R.ok()) << R.CompileError;
  ASSERT_EQ(R.Results.size(), 1u);
  EXPECT_EQ(R.Results[0], b32(42));
  EXPECT_GT(R.MachineStats.Steps, 0u);
}

TEST(EngineJobs, AllBackendsAgreeThroughTheEngine) {
  Engine Eng({.Threads = 2});
  std::vector<JobResult> Res;
  for (Backend B : AllBackends) {
    Job J;
    J.Request = requestFor(addOneSource());
    J.B = B;
    J.Args = {b32(9)};
    Res.push_back(Eng.wait(Eng.submit(std::move(J))));
  }
  ASSERT_EQ(Res.size(), std::size(AllBackends));
  for (size_t I = 1; I < Res.size(); ++I) {
    EXPECT_TRUE(Res[0].Results == Res[I].Results);
    EXPECT_EQ(Res[0].MachineStats.Steps, Res[I].MachineStats.Steps);
  }
}

TEST(EngineJobs, FailuresAreIsolatedWithinABatch) {
  Engine Eng({.Threads = 4});
  std::vector<Job> Jobs;
  {
    Job J; // compile error
    J.Request = requestFor("main( { not c-- at all");
    Jobs.push_back(std::move(J));
  }
  {
    Job J; // goes wrong, with a location
    J.Request = requestFor(goesWrongSource());
    J.Args = {b32(5)};
    Jobs.push_back(std::move(J));
  }
  {
    Job J; // halts
    J.Request = requestFor(addOneSource());
    J.Args = {b32(1)};
    Jobs.push_back(std::move(J));
  }
  std::vector<JobResult> Res = Eng.run(std::move(Jobs));
  ASSERT_EQ(Res.size(), 3u);
  EXPECT_NE(Res[0].CompileError.find("compile failed"), std::string::npos)
      << Res[0].CompileError;
  EXPECT_EQ(Res[1].Status, MachineStatus::Wrong);
  EXPECT_NE(Res[1].WrongReason.find("unbound"), std::string::npos)
      << Res[1].WrongReason;
  EXPECT_FALSE(Res[1].WrongLoc.str().empty());
  ASSERT_EQ(Res[2].Status, MachineStatus::Halted);
  EXPECT_EQ(Res[2].Results[0], b32(2));
}

TEST(EngineJobs, FuelExhaustionLeavesRunningWithoutTimeout) {
  Engine Eng({.Threads = 1});
  Job J;
  J.Request = requestFor(loopForeverSource());
  J.Args = {b32(0)};
  J.MaxSteps = 1'000;
  JobResult R = Eng.wait(Eng.submit(std::move(J)));
  EXPECT_EQ(R.Status, MachineStatus::Running);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_LE(R.MachineStats.Steps, 1'000u);
}

TEST(EngineJobs, DeadlineStopsARunawayJob) {
  Engine Eng({.Threads = 1});
  Job J;
  J.Request = requestFor(loopForeverSource());
  J.Args = {b32(0)};
  J.DeadlineMillis = 25;
  JobResult R = Eng.wait(Eng.submit(std::move(J)));
  EXPECT_EQ(R.Status, MachineStatus::Running);
  EXPECT_TRUE(R.TimedOut);
  // It ran at least one deadline slice before the check could fire.
  EXPECT_GE(R.MachineStats.Steps, Engine::DeadlineSliceSteps);
}

TEST(EngineJobs, DeadlineStopsAYieldHeavyJob) {
  // Period 1: every iteration raises through the run-time system, so the
  // machine suspends long before a deadline slice completes. The deadline
  // must be enforced across suspend/resume cycles, not only inside slices
  // that finish Running.
  Engine Eng({.Threads = 1});
  Job J;
  J.Request.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  J.Entry = "sweep";
  J.Args = {b32(0x7fffffff), b32(1), b32(8)};
  J.Dispatcher = DispatcherKind::Unwind;
  J.DeadlineMillis = 25;
  JobResult R = Eng.wait(Eng.submit(std::move(J)));
  ASSERT_TRUE(R.CompileError.empty()) << R.CompileError;
  EXPECT_EQ(R.Status, MachineStatus::Running);
  EXPECT_TRUE(R.TimedOut);
}

TEST(EngineJobs, DispatchedJobsServiceYields) {
  Engine Eng({.Threads = 2});
  for (auto [T, D] :
       {std::pair{DispatchTechnique::UnwindRuntime, DispatcherKind::Unwind},
        std::pair{DispatchTechnique::CutRuntime, DispatcherKind::Cut}}) {
    Job J;
    J.Request.Sources = {dispatchWorkloadSource(T)};
    J.Entry = "bench";
    J.Args = {b32(12), b32(1)};
    J.Dispatcher = D;
    JobResult R = Eng.wait(Eng.submit(std::move(J)));
    EXPECT_TRUE(R.ok()) << "technique " << dispatchTechniqueName(T) << ": "
                        << R.CompileError << " status "
                        << static_cast<int>(R.Status);
  }
}

TEST(EngineCache, ArtifactOutlivesItsEngine) {
  // Artifacts are handed to embedders as shared_ptr and survive eviction —
  // including the whole Engine going away. The first bytecode() compile
  // after that must not touch cache-owned state (the compile counter is
  // shared, not borrowed).
  std::shared_ptr<const ProgramArtifact> Art;
  {
    Engine Eng({.Threads = 1});
    Art = Eng.compile(requestFor(addOneSource()));
    ASSERT_TRUE(Art->ok());
  }
  std::unique_ptr<Executor> Exec = Art->newExecutor(Backend::Vm);
  Exec->start("main", {b32(41)});
  ASSERT_EQ(Exec->run(), MachineStatus::Halted);
  EXPECT_EQ(Exec->argArea()[0], b32(42));
}

TEST(EngineJobs, PreInternedArtifactSkipsCompilation) {
  Engine Eng({.Threads = 2});
  std::shared_ptr<const ProgramArtifact> Art =
      compileArtifact(requestFor(addOneSource()));
  ASSERT_TRUE(Art->ok());
  Job J;
  J.Artifact = Art;
  J.Args = {b32(10)};
  JobResult R = Eng.wait(Eng.submit(std::move(J)));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Results[0], b32(11));
  EXPECT_EQ(Eng.cacheStats().IrCompiles, 0u);
}

//===----------------------------------------------------------------------===//
// Per-job observability
//===----------------------------------------------------------------------===//

TEST(EngineObservability, TraceEventsCarryTheJobId) {
  Engine Eng({.Threads = 1});
  std::ostringstream TraceOut;
  Job J;
  J.Request = requestFor(addOneSource());
  J.Args = {b32(3)};
  J.TraceTo = &TraceOut;
  uint64_t Id = Eng.submit(std::move(J));
  JobResult R = Eng.wait(Id);
  ASSERT_TRUE(R.ok());
  std::string Expect = "\"job\":" + std::to_string(Id);
  EXPECT_NE(TraceOut.str().find(Expect), std::string::npos)
      << TraceOut.str().substr(0, 400);
}

TEST(EngineObservability, ProfileJsonIsTaggedAndReturned) {
  Engine Eng({.Threads = 1});
  Job J;
  J.Request = requestFor(addOneSource());
  J.Args = {b32(3)};
  J.CollectProfile = true;
  uint64_t Id = Eng.submit(std::move(J));
  JobResult R = Eng.wait(Id);
  ASSERT_TRUE(R.ok());
  ASSERT_FALSE(R.ProfileJson.empty());
  EXPECT_NE(R.ProfileJson.find("\"job\""), std::string::npos) << R.ProfileJson;
  EXPECT_NE(R.ProfileJson.find(std::to_string(Id)), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Backend facade
//===----------------------------------------------------------------------===//

TEST(EngineFacade, BackendNamesRoundTrip) {
  for (Backend B : AllBackends)
    EXPECT_EQ(parseBackend(backendName(B)), B);
  EXPECT_FALSE(parseBackend("bogus").has_value());
}

TEST(EngineFacade, ArtifactErrorsKeepHarnessPhasePrefixes) {
  auto Bad = compileArtifact(requestFor("not a program"));
  EXPECT_FALSE(Bad->ok());
  EXPECT_EQ(Bad->error().rfind("compile failed: ", 0), 0u) << Bad->error();
  EXPECT_EQ(Bad->program(), nullptr);
}

//===----------------------------------------------------------------------===//
// Metrics reconciliation
//===----------------------------------------------------------------------===//

TEST(EngineMetrics, CacheCountersReconcileWithCompiles) {
  EngineOptions EO;
  EO.Threads = 2;
  Engine Eng(EO);
  // Three distinct sources, each requested twice: 6 lookups, 3 compiles,
  // 3 hits — and the identity lookups == hits + ir_compiles must hold.
  std::vector<std::string> Variants;
  for (int K = 0; K < 3; ++K)
    Variants.push_back("export main;\nmain(bits32 n) { return (n + " +
                       std::to_string(K) + "); }\n");
  std::vector<Job> Batch;
  for (int Round = 0; Round < 2; ++Round)
    for (const std::string &Src : Variants) {
      Job J;
      J.Request.Sources = {Src};
      J.Args = {b32(1)};
      Batch.push_back(std::move(J));
    }
  std::vector<JobResult> Res = Eng.run(std::move(Batch));
  for (const JobResult &R : Res)
    ASSERT_TRUE(R.ok()) << R.CompileError;

  MetricsRegistry &M = Eng.metrics();
  uint64_t Lookups = M.counter("cache.lookups").value();
  uint64_t Hits = M.counter("cache.hits").value();
  uint64_t Misses = M.counter("cache.misses").value();
  uint64_t Compiles = M.counter("cache.ir_compiles").value();
  EXPECT_EQ(Lookups, 6u);
  EXPECT_EQ(Compiles, 3u);
  EXPECT_EQ(Lookups, Hits + Misses);
  // Every miss either compiled or joined a compile already in flight.
  EXPECT_EQ(Misses,
            Compiles + M.counter("cache.singleflight_joins").value());
  // The registry view and the legacy CacheStats view must agree.
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.Lookups, Lookups);
  EXPECT_EQ(CS.Hits, Hits);
  EXPECT_EQ(CS.IrCompiles, Compiles);
  // The compile-latency histogram saw exactly the actual compiles.
  EXPECT_EQ(M.histogram("cache.compile_micros").count(), Compiles);
}

TEST(EngineMetrics, JobAndPoolGaugesSettleAfterDrain) {
  EngineOptions EO;
  EO.Threads = 3;
  Engine Eng(EO);
  std::vector<Job> Batch;
  for (int I = 0; I < 24; ++I) {
    Job J;
    J.Request = requestFor(addOneSource());
    J.Args = {b32(uint64_t(I))};
    Batch.push_back(std::move(J));
  }
  std::vector<JobResult> Res = Eng.run(std::move(Batch));
  ASSERT_EQ(Res.size(), 24u);

  MetricsRegistry &M = Eng.metrics();
  EXPECT_EQ(M.counter("engine.jobs").value(), 24u);
  EXPECT_EQ(M.counter("engine.jobs_halted").value(), 24u);
  EXPECT_EQ(M.histogram("engine.job_micros").count(), 24u);
  // Every level must be back to zero once the batch has drained.
  EXPECT_EQ(M.gauge("engine.jobs_queued").value(), 0);
  EXPECT_EQ(M.gauge("engine.jobs_running").value(), 0);
  EXPECT_EQ(M.gauge("pool.queued").value(), 0);
  EXPECT_EQ(Eng.pool().queuedApprox(), 0u);
  // Each job rode exactly one pool task.
  EXPECT_EQ(Eng.pool().tasksExecuted(), 24u);
  EXPECT_EQ(M.counter("pool.tasks_executed").value(), 24u);
}

//===----------------------------------------------------------------------===//
// Cache-key stability
//===----------------------------------------------------------------------===//

TEST(EngineCache, KeyBytesArePinnedAndHostIndependent) {
  // Golden values for the v2 key derivation (explicit little-endian
  // absorption, position-salted second lane). These must never change
  // silently: on-disk artifacts are addressed by them, so any intentional
  // change to the hash must come with a tag bump — and a revert to the old
  // degenerate two-basis scheme (both lanes hashing the identical stream,
  // leaving ~64 bits of entropy) changes them too and fails here.
  CompileRequest A = requestFor(addOneSource());
  CacheKey KA = cacheKeyFor(A);
  EXPECT_EQ(KA.Hi, 0x8b760f908466a1ebull);
  EXPECT_EQ(KA.Lo, 0x04a6f4c064ddac89ull);
  // str() is the on-disk address: 32 zero-padded hex digits.
  EXPECT_EQ(KA.str(), "8b760f908466a1eb04a6f4c064ddac89");
  EXPECT_EQ(KA.str().size(), 32u);

  CompileRequest B = A;
  B.Optimize = true;
  CacheKey KB = cacheKeyFor(B);
  EXPECT_EQ(KB.Hi, 0xe34e23b72b354662ull);
  EXPECT_EQ(KB.Lo, 0x03ae0a9ddac2692dull);

  CompileRequest C;
  C.Sources = {"", "x"};
  CacheKey KC = cacheKeyFor(C);
  EXPECT_EQ(KC.Hi, 0x6843f28fcf6e0be8ull);
  EXPECT_EQ(KC.Lo, 0x61623c71e0717f7cull);
}

TEST(EngineCache, KeyLanesDiffer) {
  // With genuinely independent lanes the halves never coincide on real
  // inputs (with the degenerate scheme they never coincided either, but
  // they carried no independent information; the pinned bytes above are
  // the real regression gate — this is a cheap sanity sweep).
  for (int I = 0; I < 64; ++I) {
    CompileRequest R;
    R.Sources = {std::string(size_t(I), 'a')};
    CacheKey K = cacheKeyFor(R);
    EXPECT_NE(K.Hi, K.Lo) << "length " << I;
  }
}

//===----------------------------------------------------------------------===//
// Failed compiles are never cached
//===----------------------------------------------------------------------===//

TEST(EngineCache, FailedCompilesAreNotCached) {
  Engine Eng({.Threads = 1});
  CompileRequest Bad = requestFor("main( {");
  auto A1 = Eng.compile(Bad);
  ASSERT_FALSE(A1->ok());
  EXPECT_FALSE(A1->error().empty());
  auto A2 = Eng.compile(Bad);
  ASSERT_FALSE(A2->ok());
  CacheStats CS = Eng.cacheStats();
  // The second request recompiled: the errored artifact was evicted after
  // waking the first flight's waiters, not served from the index.
  EXPECT_EQ(CS.IrCompiles, 2u);
  EXPECT_EQ(CS.Hits, 0u);
  EXPECT_EQ(CS.Misses, 2u);
  // A good request on the same engine is unaffected.
  auto OK = Eng.compile(requestFor(addOneSource()));
  EXPECT_TRUE(OK->ok());
}

TEST(EngineCache, StatsCountMisses) {
  Engine Eng({.Threads = 1});
  (void)Eng.compile(requestFor(addOneSource()));   // miss
  (void)Eng.compile(requestFor(addOneSource()));   // hit
  (void)Eng.compile(requestFor(goesWrongSource())); // miss
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.Lookups, 3u);
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 2u);
  EXPECT_EQ(CS.Lookups, CS.Hits + CS.Misses);
}

TEST(EngineCacheDeathTest, ErroredArtifactFailsLoudlyInsteadOfUB) {
  auto A = compileArtifact(requestFor("main( {"));
  ASSERT_FALSE(A->ok());
  // Asking an errored artifact to produce code must abort with a message,
  // not dereference the null program.
  EXPECT_DEATH((void)A->bytecode(), "errored artifact");
  EXPECT_DEATH((void)A->threaded(), "errored artifact");
  EXPECT_DEATH((void)A->newExecutor(Backend::Walk), "errored artifact");
}

//===----------------------------------------------------------------------===//
// The persistent tier
//===----------------------------------------------------------------------===//

TEST(PersistentCache, SecondEngineStartsDiskWarmWithZeroCompiles) {
  test::ScratchDir Dir("diskwarm");
  const char *Corpus[] = {addOneSource(), goesWrongSource(),
                          loopForeverSource()};

  std::vector<Value> FirstResults;
  {
    Engine Eng({.Threads = 1, .CacheDir = Dir.str()});
    for (const char *Src : Corpus)
      ASSERT_TRUE(Eng.compile(requestFor(Src))->ok());
    Job J;
    J.Request = requestFor(addOneSource());
    J.Args = {b32(41)};
    FirstResults = Eng.runJob(J).Results;
    CacheStats CS = Eng.cacheStats();
    EXPECT_EQ(CS.IrCompiles, 3u);
    EXPECT_EQ(CS.DiskWrites, 3u);
    EXPECT_EQ(CS.DiskHits, 0u);
  }

  // A second engine over the same directory performs zero IR compiles and
  // zero bytecode compiles on the corpus the first one compiled.
  Engine Eng2({.Threads = 1, .CacheDir = Dir.str()});
  for (const char *Src : Corpus)
    ASSERT_TRUE(Eng2.compile(requestFor(Src))->ok());
  Job J;
  J.Request = requestFor(addOneSource());
  J.B = Backend::Vm;
  J.Args = {b32(41)};
  JobResult R = Eng2.runJob(J);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Results == FirstResults);
  CacheStats CS = Eng2.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 0u);
  EXPECT_EQ(CS.BytecodeCompiles, 0u) << "bytecode ships inside the artifact";
  EXPECT_EQ(CS.DiskHits, 3u);
  EXPECT_EQ(CS.DiskWrites, 0u);
}

TEST(PersistentCache, CorruptFileFallsBackToCompileAndIsRewritten) {
  test::ScratchDir Dir("corrupt");
  CompileRequest Req = requestFor(addOneSource());
  std::string Path =
      ArtifactStore::filePath(Dir.str(), cacheKeyFor(Req));
  {
    std::ofstream F(Path, std::ios::binary);
    F << "this is not an artifact";
  }
  Engine Eng({.Threads = 1, .CacheDir = Dir.str()});
  auto A = Eng.compile(Req);
  ASSERT_TRUE(A->ok());
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.DiskErrors, 1u);
  EXPECT_EQ(CS.IrCompiles, 1u);
  EXPECT_EQ(CS.DiskWrites, 1u) << "good artifact replaces the corrupt file";

  // The rewritten file is valid: a fresh engine disk-hits it.
  Engine Eng2({.Threads = 1, .CacheDir = Dir.str()});
  ASSERT_TRUE(Eng2.compile(Req)->ok());
  EXPECT_EQ(Eng2.cacheStats().DiskHits, 1u);
  EXPECT_EQ(Eng2.cacheStats().IrCompiles, 0u);
}

TEST(PersistentCache, ErroredCompilesAreNeverWrittenToDisk) {
  test::ScratchDir Dir("errored");
  Engine Eng({.Threads = 1, .CacheDir = Dir.str()});
  CompileRequest Bad = requestFor("main( {");
  ASSERT_FALSE(Eng.compile(Bad)->ok());
  EXPECT_EQ(Eng.cacheStats().DiskWrites, 0u);
  EXPECT_FALSE(std::filesystem::exists(
      ArtifactStore::filePath(Dir.str(), cacheKeyFor(Bad))));
}

TEST(PersistentCache, ConcurrentRequestsShareOneDiskLoad) {
  test::ScratchDir Dir("concurrent");
  {
    Engine Warm({.Threads = 1, .CacheDir = Dir.str()});
    ASSERT_TRUE(Warm.compile(requestFor(addOneSource()))->ok());
  }
  // Many threads race one key on a disk-warm directory: the single-flight
  // slot covers the disk tier too, so exactly one load happens (and TSan
  // sees the concurrent access pattern).
  Engine Eng({.Threads = 8, .CacheDir = Dir.str()});
  std::vector<Job> Jobs(24);
  for (Job &J : Jobs) {
    J.Request = requestFor(addOneSource());
    J.Args = {b32(1)};
  }
  std::vector<JobResult> Results = Eng.run(std::move(Jobs));
  for (const JobResult &R : Results)
    ASSERT_TRUE(R.ok());
  CacheStats CS = Eng.cacheStats();
  EXPECT_EQ(CS.IrCompiles, 0u);
  EXPECT_EQ(CS.DiskHits, 1u);
}

TEST(EngineMetrics, MetricsJsonParsesWithMiniJson) {
  EngineOptions EO;
  EO.Threads = 1;
  Engine Eng(EO);
  Job J;
  J.Request = requestFor(addOneSource());
  J.Args = {b32(41)};
  ASSERT_TRUE(Eng.runJob(J).ok());

  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Eng.metricsJson(), &Err);
  ASSERT_TRUE(Doc) << Err;
  EXPECT_EQ(Doc->get("counters")->numberAt("engine.jobs"), 1);
  EXPECT_EQ(Doc->get("counters")->numberAt("engine.jobs_halted"), 1);
  // Probes surface among the counters.
  EXPECT_EQ(Doc->get("counters")->numberAt("cache.bytecode_compiles"), 0);
  const JsonValue *H = Doc->get("histograms")->get("engine.job_micros");
  ASSERT_TRUE(H);
  EXPECT_EQ(H->numberAt("count"), 1);
}

} // namespace
