//===- tests/ServiceTest.cpp - cmmexd service-level tests -----------------===//
//
// Part of cmmex (see DESIGN.md).
//
// The service suite behind ISSUE 9: round trips on every backend, tenant
// quota enforcement (fuel / deadline / memory / in-flight / sessions),
// resume-over-the-wire parity with the in-process engine, session
// lifecycle (close, tenant isolation, TTL expiry), graceful shutdown, and
// the protocol-rejection catalog (truncated frames, bit-flipped checksums,
// stale versions, oversized length prefixes — each refused loudly without
// crashing the server or leaking the connection).
//
// Every test spawns its own in-process server on an ephemeral socket
// (test::ServiceHarness), so the suite is hermetic and safe under
// `ctest -j`.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "engine/Engine.h"
#include "support/MiniJson.h"
#include "svc/Client.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace cmm;
using namespace cmm::engine;
using cmm::test::b32;
using cmm::test::ServiceHarness;

namespace {

const char *addOneSource() {
  return "export main;\n"
         "main(bits32 n) { return (n + 1); }\n";
}

const char *loopForeverSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "loop:\n"
         "  n = n + 1;\n"
         "  goto loop;\n"
         "}\n";
}

/// Touches one fresh memory page per iteration (pages are allocated
/// lazily on store), so the memory quota is the only thing that can stop
/// it before fuel runs out.
const char *pageHogSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 a;\n"
         "  a = 0;\n"
         "loop:\n"
         "  bits32[a] = n;\n"
         "  a = a + 4096;\n"
         "  goto loop;\n"
         "}\n";
}

svc::RunRequestMsg runMsg(std::string Source, std::string Tenant = "t") {
  svc::RunRequestMsg M;
  M.Tenant = std::move(Tenant);
  M.Sources = {std::move(Source)};
  M.Args = {b32(41)};
  return M;
}

/// Parks a sweep workload (UnwindRuntime raises on every period-th
/// iteration; with no server-side dispatcher the first raise suspends and
/// parks). Returns the parked session id, or 0 on failure.
uint64_t parkSweep(svc::Client &C, const std::string &Tenant = "t") {
  svc::RunRequestMsg M;
  M.Tenant = Tenant;
  M.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  M.Entry = "sweep";
  M.Args = {b32(6), b32(2), b32(4)};
  M.Park = true;
  std::optional<svc::ResultMsg> R = C.run(std::move(M));
  if (!R || MachineStatus(R->Status) != MachineStatus::Suspended)
    return 0;
  return R->SessionId;
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(ServiceRoundTrip, PingAndStats) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->ping());
  std::optional<std::string> S = C->statsJson();
  ASSERT_TRUE(S.has_value());
  std::optional<JsonValue> Doc = parseJson(*S);
  ASSERT_TRUE(Doc.has_value()) << "stats are not valid JSON";
  const JsonValue *Counters = Doc->get("counters");
  ASSERT_NE(Counters, nullptr);
  // The snapshot covers both the service layer and the engine beneath it.
  EXPECT_GE(Counters->numberAt("svc.requests"), 1.0);
  EXPECT_NE(Counters->get("engine.jobs"), nullptr);
}

TEST(ServiceRoundTrip, RunRoundTripOnEveryBackend) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  for (Backend B : AllBackends) {
    svc::RunRequestMsg M = runMsg(addOneSource());
    M.Backend = uint8_t(B);
    std::optional<svc::ResultMsg> R = C->run(std::move(M));
    ASSERT_TRUE(R.has_value()) << backendName(B);
    EXPECT_TRUE(R->CompileError.empty()) << R->CompileError;
    EXPECT_EQ(MachineStatus(R->Status), MachineStatus::Halted)
        << backendName(B);
    ASSERT_EQ(R->Results.size(), 1u);
    EXPECT_EQ(R->Results[0], b32(42));
    EXPECT_EQ(R->SessionId, 0u);
  }
  // Same source, so every backend after the first compiled from the cache.
  svc::RunRequestMsg M = runMsg(addOneSource());
  std::optional<svc::ResultMsg> R = C->run(std::move(M));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->CacheHit);
}

TEST(ServiceRoundTrip, PipelinedRequestsAllComplete) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  constexpr int N = 16;
  std::vector<uint64_t> Ids;
  for (int I = 0; I < N; ++I) {
    svc::RunRequestMsg M = runMsg(addOneSource());
    M.Args = {b32(uint64_t(I))};
    Ids.push_back(C->sendRun(std::move(M)));
  }
  // Responses may arrive in any order; wait(id) must pair each one up.
  for (int I = N - 1; I >= 0; --I) {
    std::optional<svc::Reply> R = C->wait(Ids[size_t(I)]);
    ASSERT_TRUE(R.has_value()) << C->error();
    ASSERT_EQ(R->Type, svc::MsgType::RespResult);
    ASSERT_EQ(R->Result.Results.size(), 1u);
    EXPECT_EQ(R->Result.Results[0], b32(uint64_t(I) + 1));
  }
}

TEST(ServiceRoundTrip, CompileInternsAndReportsCacheHit) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  svc::CompileRequestMsg M;
  M.Tenant = "t";
  M.Sources = {addOneSource()};
  std::optional<svc::CompiledMsg> R1 = C->compile(M);
  ASSERT_TRUE(R1.has_value());
  EXPECT_TRUE(R1->Ok) << R1->Error;
  EXPECT_EQ(R1->Key.size(), 32u);
  EXPECT_FALSE(R1->CacheHit);
  std::optional<svc::CompiledMsg> R2 = C->compile(M);
  ASSERT_TRUE(R2.has_value());
  EXPECT_TRUE(R2->CacheHit);
  EXPECT_EQ(R2->Key, R1->Key);

  // A compile failure travels in the artifact, not as a protocol error.
  svc::CompileRequestMsg Bad;
  Bad.Tenant = "t";
  Bad.Sources = {"export main;\nmain(bits32 n) { return (q); }\n"};
  std::optional<svc::CompiledMsg> R3 = C->compile(Bad);
  ASSERT_TRUE(R3.has_value());
  EXPECT_FALSE(R3->Ok);
  EXPECT_FALSE(R3->Error.empty());
}

TEST(ServiceRoundTrip, WrongJobReportsReasonNotCrash) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  // Reads an unbound local: the machine goes Wrong, the service reports it.
  svc::RunRequestMsg M = runMsg("export main;\n"
                                "main(bits32 n) {\n"
                                "  bits32 x, y;\n"
                                "  if n != 0 { x = y; }\n"
                                "  return (x);\n"
                                "}\n");
  M.Args = {b32(1)};
  std::optional<svc::ResultMsg> R = C->run(std::move(M));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(MachineStatus(R->Status), MachineStatus::Wrong);
  EXPECT_FALSE(R->WrongReason.empty());
  EXPECT_TRUE(C->ping()) << "connection must survive a Wrong job";
}

TEST(ServiceRoundTrip, TcpTransportRoundTrip) {
  svc::ServerOptions O;
  O.UseTcp = true;
  O.TcpPort = 0; // ephemeral
  ServiceHarness H(std::move(O));
  ASSERT_TRUE(H.ok());
  EXPECT_NE(H.server().tcpPort(), 0u);
  auto C = H.client();
  ASSERT_TRUE(C);
  std::optional<svc::ResultMsg> R = C->run(runMsg(addOneSource()));
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->Results.size(), 1u);
  EXPECT_EQ(R->Results[0], b32(42));
}

//===----------------------------------------------------------------------===//
// Tenant quotas
//===----------------------------------------------------------------------===//

TEST(ServiceQuota, FuelQuotaLeavesRunningWithoutTimeout) {
  svc::ServerOptions O;
  O.Quota.MaxFuel = 1000;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  // The request asks for unlimited fuel; the tenant quota clamps it.
  std::optional<svc::ResultMsg> R = C->run(runMsg(loopForeverSource()));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(MachineStatus(R->Status), MachineStatus::Running);
  EXPECT_FALSE(R->TimedOut);
  EXPECT_LE(R->MachineStats.Steps, 1000u);
}

TEST(ServiceQuota, DeadlineQuotaStopsARunawayJob) {
  svc::ServerOptions O;
  O.Quota.MaxDeadlineMillis = 25;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  svc::RunRequestMsg M = runMsg(loopForeverSource());
  M.DeadlineMillis = 60'000; // clamped down to the quota's 25ms
  std::optional<svc::ResultMsg> R = C->run(std::move(M));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(MachineStatus(R->Status), MachineStatus::Running);
  EXPECT_TRUE(R->TimedOut);
}

TEST(ServiceQuota, MemoryQuotaStopsAPageHog) {
  svc::ServerOptions O;
  O.Quota.MaxMemoryBytes = 1 << 16; // 16 pages
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  std::optional<svc::ResultMsg> R = C->run(runMsg(pageHogSource()));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->MemExceeded);
  EXPECT_NE(MachineStatus(R->Status), MachineStatus::Halted);
}

TEST(ServiceQuota, InFlightQuotaRefusesLoudly) {
  svc::ServerOptions O;
  O.Quota.MaxInFlight = 0; // every run is over quota — deterministically
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  svc::ErrorMsg E;
  std::optional<svc::ResultMsg> R = C->run(runMsg(addOneSource()), &E);
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(E.Code, svc::ErrCode::QuotaExceeded);
  EXPECT_GE(H.server().metrics().counter("svc.quota_rejects").value(), 1u);
  EXPECT_TRUE(C->ping()) << "a quota refusal must not kill the connection";
}

TEST(ServiceQuota, SessionQuotaBoundsParkedSessions) {
  svc::ServerOptions O;
  O.Quota.MaxSessions = 1;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  uint64_t S1 = parkSweep(*C);
  ASSERT_NE(S1, 0u);

  // Second park: refused at admission (the slot is reserved before the job
  // runs, so parallel parks cannot overshoot either).
  svc::RunRequestMsg M;
  M.Tenant = "t";
  M.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  M.Entry = "sweep";
  M.Args = {b32(6), b32(2), b32(4)};
  M.Park = true;
  svc::ErrorMsg E;
  std::optional<svc::ResultMsg> R2 = C->run(std::move(M), &E);
  EXPECT_FALSE(R2.has_value());
  EXPECT_EQ(E.Code, svc::ErrCode::QuotaExceeded);

  // Closing the parked session frees the slot for the next park.
  EXPECT_TRUE(C->closeSession("t", S1));
  EXPECT_NE(parkSweep(*C), 0u);
}

//===----------------------------------------------------------------------===//
// Sessions: resume over the wire
//===----------------------------------------------------------------------===//

TEST(ServiceSession, ResumeOverWireMatchesInProcessEngine) {
  // Ground truth: the same sweep serviced in-process by the unwinding
  // dispatcher inside one Engine::runJob call.
  Engine Eng({.Threads = 1});
  Job J;
  J.Request.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  J.Entry = "sweep";
  J.Args = {b32(6), b32(2), b32(4)};
  J.Dispatcher = DispatcherKind::Unwind;
  JobResult Expect = Eng.runJob(J);
  ASSERT_TRUE(Expect.ok()) << Expect.CompileError << Expect.WrongReason;

  // Wire: park at every yield and service each one with an explicit
  // ReqResume{Dispatch} round trip.
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  svc::RunRequestMsg M;
  M.Tenant = "t";
  M.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  M.Entry = "sweep";
  M.Args = {b32(6), b32(2), b32(4)};
  M.Park = true;
  std::optional<svc::ResultMsg> R = C->run(std::move(M));
  ASSERT_TRUE(R.has_value());
  unsigned WireResumes = 0;
  while (MachineStatus(R->Status) == MachineStatus::Suspended) {
    ASSERT_NE(R->SessionId, 0u) << "yield was not parked";
    ASSERT_LT(WireResumes, 100u) << "sweep did not converge";
    svc::ResumeRequestMsg Res;
    Res.Tenant = "t";
    Res.SessionId = R->SessionId;
    Res.Op = svc::ResumeOp::Dispatch;
    Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
    R = C->resume(std::move(Res));
    ASSERT_TRUE(R.has_value());
    EXPECT_TRUE(R->DispatchHandled);
    ++WireResumes;
  }
  EXPECT_EQ(MachineStatus(R->Status), MachineStatus::Halted);
  EXPECT_EQ(R->Results, Expect.Results) << "wire result diverged";
  EXPECT_EQ(WireResumes, Expect.ResumeCycles)
      << "wire resumes != in-process dispatcher cycles";
  EXPECT_EQ(R->SessionId, 0u) << "halted session must be unparked";
  EXPECT_EQ(H.server().sessionsOpen(), 0);
}

TEST(ServiceSession, CloseIsIdempotentAndResumeAfterCloseFails) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  uint64_t S = parkSweep(*C);
  ASSERT_NE(S, 0u);
  EXPECT_TRUE(C->closeSession("t", S));
  EXPECT_FALSE(C->closeSession("t", S)) << "second close must report absent";
  svc::ResumeRequestMsg Res;
  Res.Tenant = "t";
  Res.SessionId = S;
  Res.Op = svc::ResumeOp::Dispatch;
  Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
  svc::ErrorMsg E;
  EXPECT_FALSE(C->resume(std::move(Res), &E).has_value());
  EXPECT_EQ(E.Code, svc::ErrCode::NoSuchSession);
}

TEST(ServiceSession, TenantsCannotTouchEachOthersSessions) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  uint64_t S = parkSweep(*C, "alice");
  ASSERT_NE(S, 0u);
  svc::ResumeRequestMsg Res;
  Res.Tenant = "mallory";
  Res.SessionId = S;
  Res.Op = svc::ResumeOp::Dispatch;
  Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
  svc::ErrorMsg E;
  EXPECT_FALSE(C->resume(std::move(Res), &E).has_value());
  EXPECT_EQ(E.Code, svc::ErrCode::NoSuchSession)
      << "foreign sessions must be indistinguishable from absent ones";
  EXPECT_FALSE(C->closeSession("mallory", S));
  EXPECT_TRUE(C->closeSession("alice", S));
}

TEST(ServiceSession, CloseAfterDiscardsTheSessionInOneRoundTrip) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  uint64_t S = parkSweep(*C);
  ASSERT_NE(S, 0u);
  svc::ResumeRequestMsg Res;
  Res.Tenant = "t";
  Res.SessionId = S;
  Res.Op = svc::ResumeOp::Dispatch;
  Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
  Res.CloseAfter = true; // give up after this much progress
  std::optional<svc::ResultMsg> R = C->resume(std::move(Res));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->SessionId, 0u) << "CloseAfter must unpark in-round-trip";
  EXPECT_EQ(H.server().sessionsOpen(), 0);
}

TEST(ServiceSession, IdleSessionsExpireAfterTtl) {
  svc::ServerOptions O;
  O.SessionTtlMillis = 50;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  uint64_t S = parkSweep(*C);
  ASSERT_NE(S, 0u);
  // The reaper wakes every max(10ms, ttl/4); well within this wait.
  for (int I = 0; I < 100 && H.server().sessionsOpen() > 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(H.server().sessionsOpen(), 0) << "TTL reaper never fired";
  EXPECT_GE(H.server().metrics().counter("svc.sessions_expired").value(), 1u);
  svc::ResumeRequestMsg Res;
  Res.Tenant = "t";
  Res.SessionId = S;
  Res.Op = svc::ResumeOp::Dispatch;
  Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
  svc::ErrorMsg E;
  EXPECT_FALSE(C->resume(std::move(Res), &E).has_value());
  EXPECT_EQ(E.Code, svc::ErrCode::NoSuchSession);
}

TEST(ServiceSession, ActivelyDrivenSessionSurvivesTtl) {
  // The reaper claims a session's Busy flag and then re-checks its idle
  // clock before expiring it, so a session that is being resumed at a
  // period well under the TTL must never be reclaimed.
  svc::ServerOptions O;
  O.SessionTtlMillis = 250;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  // A long sweep: ~20 raises before it halts, far more than this drives.
  svc::RunRequestMsg M;
  M.Tenant = "t";
  M.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
  M.Entry = "sweep";
  M.Args = {b32(40), b32(2), b32(4)};
  M.Park = true;
  std::optional<svc::ResultMsg> First = C->run(std::move(M));
  ASSERT_TRUE(First.has_value());
  ASSERT_EQ(MachineStatus(First->Status), MachineStatus::Suspended);
  uint64_t S = First->SessionId;
  ASSERT_NE(S, 0u);
  for (int I = 0; I < 8; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    svc::ResumeRequestMsg Res;
    Res.Tenant = "t";
    Res.SessionId = S;
    Res.Op = svc::ResumeOp::Dispatch;
    Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
    svc::ErrorMsg E;
    std::optional<svc::ResultMsg> R = C->resume(std::move(Res), &E);
    ASSERT_TRUE(R.has_value())
        << "resume " << I << " lost the session: " << E.Message;
    ASSERT_EQ(MachineStatus(R->Status), MachineStatus::Suspended);
    ASSERT_EQ(R->SessionId, S);
  }
  EXPECT_EQ(H.server().sessionsOpen(), 1);
  EXPECT_EQ(H.server().metrics().counter("svc.sessions_expired").value(), 0u);
  EXPECT_TRUE(C->closeSession("t", S));
}

//===----------------------------------------------------------------------===//
// Graceful shutdown
//===----------------------------------------------------------------------===//

TEST(ServiceShutdown, DrainDeliversEveryInFlightResponse) {
  ServiceHarness H;
  auto Work = H.client();
  auto Ctl = H.client();
  ASSERT_TRUE(Work && Ctl);

  // Pipeline a batch, give the reader a moment to admit all of them, then
  // ask for shutdown from a second connection. The drain contract: every
  // admitted request still gets its response before the sockets close.
  constexpr int N = 8;
  std::vector<uint64_t> Ids;
  for (int I = 0; I < N; ++I) {
    svc::RunRequestMsg M = runMsg(addOneSource());
    M.Args = {b32(uint64_t(I))};
    Ids.push_back(Work->sendRun(std::move(M)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(Ctl->shutdownServer());

  for (int I = 0; I < N; ++I) {
    std::optional<svc::Reply> R = Work->wait(Ids[size_t(I)]);
    ASSERT_TRUE(R.has_value()) << "response lost in drain: " << Work->error();
    ASSERT_EQ(R->Type, svc::MsgType::RespResult);
    EXPECT_EQ(R->Result.Results[0], b32(uint64_t(I) + 1));
  }
  EXPECT_TRUE(H.server().stopped());
  EXPECT_FALSE(H.server().accepting());
}

TEST(ServiceShutdown, RequestStopIsIdempotent) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->ping());
  H.server().requestStop();
  EXPECT_TRUE(H.server().stopped());
  H.server().requestStop(); // second stop: no deadlock, no crash
  EXPECT_TRUE(H.server().stopped());
}

TEST(ServiceShutdown, ConcurrentStopNeverLosesAccounting) {
  // Regression for the admission/drain race: a frame that passed the
  // reader's Stopping check could previously be admitted after
  // requestStop's drain observed zero in-flight requests, landing on the
  // engine pool while the server tore down. beginRequest now refuses
  // under the same lock requestStop raises Stopping under, so every
  // request is either drained or answered ShuttingDown. This hammers the
  // window from several connections (runs, parked sessions, resumes, an
  // active TTL reaper) while stopping the server mid-flight, and then
  // checks that nothing was double-counted or leaked.
  for (int Round = 0; Round < 6; ++Round) {
    svc::ServerOptions O;
    O.SessionTtlMillis = 20; // keep the reaper in the race too
    std::optional<ServiceHarness> H;
    H.emplace(std::move(O));
    ASSERT_TRUE(H->ok());

    std::atomic<bool> Stop{false};
    std::vector<std::thread> Drivers;
    for (int T = 0; T < 3; ++T) {
      Drivers.emplace_back([&H, &Stop, T] {
        auto C = H->client();
        if (!C)
          return;
        for (int I = 0; I < 64 && C->ok() && !Stop.load(); ++I) {
          if (T == 0) {
            // Park a session and immediately drive it to completion.
            uint64_t S = parkSweep(*C);
            if (S) {
              svc::ResumeRequestMsg Res;
              Res.Tenant = "t";
              Res.SessionId = S;
              Res.Op = svc::ResumeOp::Dispatch;
              Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
              Res.CloseAfter = true;
              C->resume(std::move(Res));
            }
          } else {
            C->run(runMsg(addOneSource()));
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 5 * Round));
    H->server().requestStop();
    Stop.store(true);
    for (std::thread &Th : Drivers)
      Th.join();
    // Sessions still parked at shutdown are swept (and counted closed) by
    // join(); only after it is the accounting final.
    H->server().join();

    MetricsRegistry &M = H->server().metrics();
    EXPECT_EQ(M.counter("svc.sessions").value(),
              M.counter("svc.sessions_closed").value() +
                  M.counter("svc.sessions_expired").value())
        << "round " << Round << ": a session was lost or double-counted";
    EXPECT_EQ(H->server().sessionsOpen(), 0) << "round " << Round;
    EXPECT_EQ(M.gauge("svc.sessions_open").value(), 0) << "round " << Round;
    EXPECT_EQ(M.gauge("svc.inflight").value(), 0)
        << "round " << Round << ": the drain left a request in flight";
    H.reset(); // ~ServiceHarness: idempotent stop + join
  }
}

//===----------------------------------------------------------------------===//
// Protocol rejection: every malformed frame is refused loudly
//===----------------------------------------------------------------------===//

/// Little-endian frame forger for the rejection tests (deliberately not
/// using encodeFrame, so each field can be corrupted independently).
struct RawFrame {
  std::vector<uint8_t> Bytes;
  RawFrame &magic(const char M[4]) {
    Bytes.insert(Bytes.end(), M, M + 4);
    return *this;
  }
  RawFrame &u8(uint8_t V) {
    Bytes.push_back(V);
    return *this;
  }
  RawFrame &u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(uint8_t(V >> (8 * I)));
    return *this;
  }
  RawFrame &u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(uint8_t(V >> (8 * I)));
    return *this;
  }
};

/// Expects the next reply on \p C to be a RespError carrying \p Code, after
/// which the server must have closed the connection.
void expectErrorThenClose(svc::Client &C, svc::ErrCode Code) {
  std::optional<svc::Reply> R = C.waitAny();
  ASSERT_TRUE(R.has_value()) << "no error reply before close: " << C.error();
  ASSERT_EQ(R->Type, svc::MsgType::RespError);
  EXPECT_EQ(R->Error.Code, Code)
      << "got " << svc::errCodeName(R->Error.Code);
  EXPECT_EQ(R->Error.ReqId, 0u) << "request id is unrecoverable here";
  EXPECT_FALSE(C.waitAny().has_value()) << "connection must be closed";
}

/// The server must survive any rejection: a fresh connection still works.
void expectServerAlive(test::ServiceHarness &H) {
  auto C = H.client();
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->ping()) << "server did not survive the rejection";
}

TEST(ServiceProtocol, BadMagicRefused) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  RawFrame F;
  F.magic("xmmx").u32(svc::ProtocolVersion).u8(uint8_t(svc::MsgType::ReqPing));
  F.u64(0).u64(svc::fnv64(nullptr, 0));
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadFrame);
  EXPECT_GE(H.server().metrics().counter("svc.bad_frames").value(), 1u);
  expectServerAlive(H);
}

TEST(ServiceProtocol, StaleProtocolVersionRefused) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  RawFrame F;
  F.magic("cmmx").u32(svc::ProtocolVersion + 7);
  F.u8(uint8_t(svc::MsgType::ReqPing)).u64(0).u64(svc::fnv64(nullptr, 0));
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadVersion);
  expectServerAlive(H);
}

TEST(ServiceProtocol, OversizedLengthPrefixRefusedBeforeAllocation) {
  svc::ServerOptions O;
  O.MaxFramePayload = 1024;
  ServiceHarness H(std::move(O));
  auto C = H.client();
  ASSERT_TRUE(C);
  // Claim a 1 GiB payload but send none of it: the server must refuse on
  // the prefix alone instead of trying to read (or allocate) the payload.
  RawFrame F;
  F.magic("cmmx").u32(svc::ProtocolVersion).u8(uint8_t(svc::MsgType::ReqRun));
  F.u64(uint64_t(1) << 30);
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadFrame);
  expectServerAlive(H);
}

TEST(ServiceProtocol, BitFlippedPayloadChecksumRefused) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  // A well-formed ping whose payload is corrupted after checksumming —
  // exactly what a bit flip in transit looks like.
  ByteWriter W;
  W.u64(7); // request id
  std::vector<uint8_t> Frame;
  svc::encodeFrame(svc::MsgType::ReqPing, W, Frame);
  Frame[svc::FrameHeaderSize] ^= 0x10;
  ASSERT_TRUE(C->sendRaw(Frame.data(), Frame.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadFrame);
  EXPECT_GE(H.server().metrics().counter("svc.bad_frames").value(), 1u);
  expectServerAlive(H);
}

TEST(ServiceProtocol, UnknownFrameTypeRefused) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  RawFrame F;
  F.magic("cmmx").u32(svc::ProtocolVersion).u8(99);
  F.u64(0).u64(svc::fnv64(nullptr, 0));
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadFrame);
  expectServerAlive(H);
}

TEST(ServiceProtocol, ResponseTypeFrameRefusedAsRequest) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  RawFrame F;
  F.magic("cmmx").u32(svc::ProtocolVersion).u8(uint8_t(svc::MsgType::RespPong));
  F.u64(0).u64(svc::fnv64(nullptr, 0));
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadRequest);
  expectServerAlive(H);
}

TEST(ServiceProtocol, MalformedPayloadRefused) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  // Type says ping (8-byte payload) but carries 4 bytes: the payload
  // decoder must refuse instead of reading past the end.
  std::vector<uint8_t> Payload = {1, 2, 3, 4};
  RawFrame F;
  F.magic("cmmx").u32(svc::ProtocolVersion).u8(uint8_t(svc::MsgType::ReqPing));
  F.u64(Payload.size());
  F.Bytes.insert(F.Bytes.end(), Payload.begin(), Payload.end());
  F.u64(svc::fnv64(Payload.data(), Payload.size()));
  ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  expectErrorThenClose(*C, svc::ErrCode::BadFrame);
  expectServerAlive(H);
}

TEST(ServiceProtocol, TruncatedFrameDropsConnectionWithoutLeak) {
  ServiceHarness H;
  uint64_t Before = H.server().metrics().counter("svc.bad_frames").value();
  {
    auto C = H.client();
    ASSERT_TRUE(C);
    // Header promises 64 payload bytes; the peer vanishes after 8. Nobody
    // is left to answer — the server just counts it and reclaims the
    // connection.
    RawFrame F;
    F.magic("cmmx").u32(svc::ProtocolVersion);
    F.u8(uint8_t(svc::MsgType::ReqPing)).u64(64).u64(0x12345678);
    ASSERT_TRUE(C->sendRaw(F.Bytes.data(), F.Bytes.size()));
  } // Client destructor closes the socket mid-frame.
  for (int I = 0; I < 200; ++I) {
    if (H.server().metrics().counter("svc.bad_frames").value() > Before)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(H.server().metrics().counter("svc.bad_frames").value(), Before)
      << "truncated frame was never noticed";
  expectServerAlive(H);
}

//===----------------------------------------------------------------------===//
// Metrics reconciliation
//===----------------------------------------------------------------------===//

TEST(ServiceMetrics, RunCounterReconcilesWithEngineJobs) {
  ServiceHarness H;
  auto C = H.client();
  ASSERT_TRUE(C);
  for (int I = 0; I < 5; ++I) {
    std::optional<svc::ResultMsg> R = C->run(runMsg(addOneSource()));
    ASSERT_TRUE(R.has_value());
  }
  MetricsRegistry &M = H.server().metrics();
  // The invariant cmmload --check and cmmstat enforce: with zero errors,
  // every admitted run request became exactly one engine job.
  EXPECT_EQ(M.counter("svc.errors").value(), 0u);
  EXPECT_EQ(M.counter("svc.requests_run").value(),
            M.counter("engine.jobs").value());
  EXPECT_EQ(M.counter("svc.bad_frames").value(), 0u);
}

} // namespace
