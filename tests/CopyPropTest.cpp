//===- tests/CopyPropTest.cpp - Copy propagation --------------------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "opt/PassManager.h"

using namespace cmm;
using namespace cmm::test;

namespace {

TEST(CopyProp, CollapsesCopyChainsAndDceCleansUp) {
  const char *Src = R"(
export main;
main(bits32 x) {
  bits32 a, b, c;
  a = x;
  b = a;
  c = b;
  return (c);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  OptReport R = optimizeProgram(*Prog);
  EXPECT_GE(R.CopyProp.UsesRewritten, 2u);
  // After propagation, a/b/c are dead and removed.
  EXPECT_GE(R.DeadCode.AssignsRemoved, 2u);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(9)})[0], b32(9));
}

TEST(CopyProp, CopyIsKilledBySourceRedefinition) {
  const char *Src = R"(
export main;
main(bits32 x) {
  bits32 a, b;
  a = x;
  b = a;
  a = a + 1;    /* the copy b := a is no longer valid */
  return (b * 100 + a);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  Machine M(*Prog);
  // b must still be the old x, a the incremented one.
  EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(5 * 100 + 6));
}

TEST(CopyProp, CallsKillCopiesOfGlobals) {
  const char *Src = R"(
export main;
global bits32 g;
set_g() { g = 42; return; }
main(bits32 x) {
  bits32 a;
  g = x;
  a = g;        /* a := g recorded */
  set_g();      /* g changes: the copy is dead */
  return (g - a);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(10)})[0], b32(32));
}

TEST(CopyProp, JoinOfDifferentCopiesIsNotACopy) {
  const char *Src = R"(
export main;
main(bits32 x) {
  bits32 a, b, c;
  a = x;
  b = x + 1;
  if x > 0 {
    c = a;
  } else {
    c = b;
  }
  return (c);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(3)})[0], b32(3));
  Machine M2(*Prog);
  EXPECT_EQ(runToHalt(M2, "main", {b32(0)})[0], b32(1));
}

TEST(CopyProp, HandlerSeesPreCutValueNotThePropagatedOne) {
  // The copy y := a must not be propagated into the handler if a cut edge
  // can kill a-in-callee-saves; with the edges present the pipeline keeps
  // everything consistent (this is guarded by the 40-seed differential
  // test too; here is the minimal instance).
  const char *Src = R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[8]; }
boom(bits32 x) {
  bits32 kv;
  if x == 7 {
    kv = bits32[exn_top];
    exn_top = exn_top - sizeof(kv);
    cut to kv(1, 2);
  }
  return;
}
main(bits32 x) {
  bits32 a, y, t, u, kv;
  exn_top = exn_stack;
  a = x * 3;
  y = a;
  exn_top = exn_top + 4;
  bits32[exn_top] = k;
  boom(x) also cuts to k also aborts;
  exn_top = exn_top - 4;
  return (y);
continuation k(t, u):
  return (y + t + u);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.PlaceCalleeSaves = true;
  optimizeProgram(*Prog, Opts);
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(15));
  }
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(7)})[0], b32(24)); // 21+1+2
  }
}

} // namespace
