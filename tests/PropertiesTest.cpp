//===- tests/PropertiesTest.cpp - Cross-cutting invariants ----------------===//
//
// Part of cmmex (see DESIGN.md). Properties that hold across the whole
// pipeline, checked over the randomized program corpus.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/RandomProgram.h"
#include "ir/IrPrinter.h"
#include "opt/PassManager.h"
#include "vm/Threaded.h"
#include "vm/Vm.h"

using namespace cmm;
using namespace cmm::test;

namespace {

class PropertiesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertiesTest, ExecutionIsDeterministic) {
  std::string Src = generateRandomProgram(GetParam());
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t In : {1, 7}) {
    Machine A(*Prog), B(*Prog);
    A.start("main", {b32(In)});
    B.start("main", {b32(In)});
    A.run(1'000'000);
    B.run(1'000'000);
    EXPECT_EQ(A.status(), B.status());
    EXPECT_EQ(A.stats().Steps, B.stats().Steps);
    EXPECT_EQ(A.stats().Cuts, B.stats().Cuts);
    if (A.status() == MachineStatus::Halted)
      EXPECT_TRUE(A.argArea() == B.argArea());
  }
}

/// run(Fuel) then run(rest) must land in exactly the state one run with the
/// whole budget reaches: status, answer, and every counter. The budget is a
/// pure scheduling artifact — a fuel boundary is not an observable event.
template <class Exec>
void expectFuelSplitInvisible(const IrProgram &Prog, uint64_t In,
                              uint64_t Fuel) {
  constexpr uint64_t Cap = 1'000'000;
  Exec A(Prog), B(Prog);
  A.start("main", {b32(In)});
  B.start("main", {b32(In)});
  MachineStatus SA = A.run(Cap);
  MachineStatus SB = B.run(Fuel);
  if (SB == MachineStatus::Running)
    SB = B.run(Cap - Fuel);
  EXPECT_EQ(SA, SB) << "input " << In << " fuel " << Fuel;
  EXPECT_EQ(A.stats().Steps, B.stats().Steps);
  EXPECT_EQ(A.stats().Calls, B.stats().Calls);
  EXPECT_EQ(A.stats().Jumps, B.stats().Jumps);
  EXPECT_EQ(A.stats().Returns, B.stats().Returns);
  EXPECT_EQ(A.stats().Cuts, B.stats().Cuts);
  EXPECT_EQ(A.stats().FramesCutOver, B.stats().FramesCutOver);
  EXPECT_EQ(A.stats().Yields, B.stats().Yields);
  EXPECT_EQ(A.stats().UnwindPops, B.stats().UnwindPops);
  EXPECT_EQ(A.stats().ContsBound, B.stats().ContsBound);
  EXPECT_EQ(A.stats().Loads, B.stats().Loads);
  EXPECT_EQ(A.stats().Stores, B.stats().Stores);
  EXPECT_EQ(A.stats().CalleeSaveMoves, B.stats().CalleeSaveMoves);
  EXPECT_EQ(A.stats().MaxStackDepth, B.stats().MaxStackDepth);
  if (SA == MachineStatus::Halted || SA == MachineStatus::Suspended) {
    EXPECT_TRUE(A.argArea() == B.argArea());
  }
  if (SA == MachineStatus::Wrong) {
    EXPECT_EQ(A.wrongReason(), B.wrongReason());
  }
}

TEST_P(PropertiesTest, FuelLimitedRunsAreResumable) {
  std::string Src = generateRandomProgram(GetParam());
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t Fuel : {uint64_t(1), uint64_t(17), uint64_t(1000)}) {
    for (uint64_t In : {1, 7}) {
      expectFuelSplitInvisible<Machine>(*Prog, In, Fuel);
      expectFuelSplitInvisible<VmMachine>(*Prog, In, Fuel);
      // The threaded tier must also honor mid-superinstruction exhaustion:
      // a fuel boundary between the two fused components is invisible.
      expectFuelSplitInvisible<ThreadedMachine>(*Prog, In, Fuel);
    }
  }
}

TEST_P(PropertiesTest, OptimizerReachesAFixpoint) {
  std::string Src = generateRandomProgram(GetParam());
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.Rounds = 8;
  optimizeProgram(*Prog, Opts);
  std::string After = printProgram(*Prog);
  // Optimizing an already optimized program changes nothing (the
  // callee-saves pass is excluded: it is placement, not cleanup, and is
  // idempotent only up to node identity).
  OptReport Second = optimizeProgram(*Prog, Opts);
  EXPECT_EQ(Second.ConstProp.ExprsRewritten, 0u);
  EXPECT_EQ(Second.CopyProp.UsesRewritten, 0u);
  EXPECT_EQ(Second.DeadCode.AssignsRemoved, 0u);
  EXPECT_EQ(printProgram(*Prog), After);
}

TEST_P(PropertiesTest, OptimizationNeverIncreasesSteps) {
  std::string Src = generateRandomProgram(GetParam());
  auto Ref = compile({Src});
  auto Opt = compile({Src});
  ASSERT_TRUE(Ref && Opt);
  optimizeProgram(*Opt);
  for (uint64_t In : {1, 7, 12}) {
    Machine A(*Ref), B(*Opt);
    A.start("main", {b32(In)});
    B.start("main", {b32(In)});
    MachineStatus SA = A.run(1'000'000);
    MachineStatus SB = B.run(1'000'000);
    ASSERT_EQ(SA, SB);
    if (SA == MachineStatus::Halted)
      EXPECT_LE(B.stats().Steps, A.stats().Steps) << "input " << In;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertiesTest,
                         ::testing::Range<uint64_t>(200, 215));

} // namespace
