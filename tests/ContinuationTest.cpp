//===- tests/ContinuationTest.cpp - First-class continuation handles ------===//
//
// Part of cmmex (see DESIGN.md). Pins sem/Continuation.h: the capture
// states (Suspended at a yield, Paused on a budget stop, Empty otherwise),
// the one-shot resume discipline (a handle is Spent after resume; resuming
// a spent handle transfers nothing), the Transferred flag separating "the
// executor ran" from "the Table 1 resume was refused", budget attachment,
// and unwindTop narrowing the capture without consuming it.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "engine/Engine.h"
#include "sem/Continuation.h"

using namespace cmm;
using cmm::test::b32;

namespace {

/// main suspends once with `r = yield(9, n)` and returns r + 1.
const char *echoSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 r;\n"
         "  r = yield(9, n);\n"
         "  return (r + 1);\n"
         "}\n";
}

/// A counting loop that halts with its argument after `n` iterations —
/// enough transitions to stop mid-run under a small fuel budget.
const char *loopSource() {
  return "export main;\n"
         "main(bits32 n) {\n"
         "  bits32 i;\n"
         "  i = 0;\n"
         "loop:\n"
         "  if i == n { return (i); }\n"
         "  i = i + 1;\n"
         "  goto loop;\n"
         "}\n";
}

/// main -> leaf -> yield, with leaf's call site abortable (unwindTop).
const char *towerSource() {
  return "export main;\n"
         "leaf(bits32 x) {\n"
         "  yield(7, x) also aborts;\n"
         "  return (0);\n"
         "}\n"
         "main(bits32 x) {\n"
         "  bits32 r;\n"
         "  r = leaf(x) also unwinds to k also aborts;\n"
         "  return (r);\n"
         "continuation k:\n"
         "  return (222);\n"
         "}\n";
}

class ContinuationTest : public ::testing::TestWithParam<engine::Backend> {
protected:
  std::unique_ptr<Executor> startOn(const char *Src, std::vector<Value> Args) {
    Prog = cmm::test::compile({Src});
    if (!Prog)
      return nullptr;
    std::unique_ptr<Executor> M = engine::makeExecutor(GetParam(), *Prog);
    M->start("main", std::move(Args));
    return M;
  }
  std::unique_ptr<IrProgram> Prog;
};

TEST_P(ContinuationTest, CaptureStatesFollowExecutorStatus) {
  std::unique_ptr<Executor> M = startOn(echoSource(), {b32(1)});
  ASSERT_TRUE(M);

  // Idle-like states are not capturable: a fresh (started, Running)
  // executor captures as Paused; Halted and Wrong capture as Empty.
  Continuation Fresh = Continuation::capture(*M);
  EXPECT_EQ(Fresh.state(), Continuation::State::Paused);

  ASSERT_EQ(M->run(), MachineStatus::Suspended);
  Continuation C = Continuation::capture(*M);
  EXPECT_EQ(C.state(), Continuation::State::Suspended);
  EXPECT_TRUE(bool(C));
  EXPECT_EQ(C.executor(), M.get());
}

TEST_P(ContinuationTest, ResumeWithValueIsOneShot) {
  std::unique_ptr<Executor> M = startOn(echoSource(), {b32(5)});
  ASSERT_TRUE(M);
  ASSERT_EQ(M->run(), MachineStatus::Suspended);
  // The yield request is visible through the handle's executor.
  Continuation C = Continuation::capture(*M);
  ASSERT_EQ(C.executor()->argArea()[0], b32(9));

  Continuation::Result R = C.resume(b32(41));
  EXPECT_TRUE(R.Transferred);
  EXPECT_EQ(R.Status, MachineStatus::Halted);
  EXPECT_EQ(M->argArea(), std::vector<Value>{b32(42)});
  EXPECT_EQ(C.state(), Continuation::State::Spent);

  // A spent handle transfers nothing and reports where the executor stands.
  Continuation::Result Again = C.resume(b32(0));
  EXPECT_FALSE(Again.Transferred);
  EXPECT_EQ(Again.Status, MachineStatus::Halted);
}

TEST_P(ContinuationTest, BudgetStopCapturesAsPausedAndContinues) {
  std::unique_ptr<Executor> M = startOn(loopSource(), {b32(100000)});
  ASSERT_TRUE(M);
  Continuation C = Continuation::capture(*M);
  ASSERT_EQ(C.state(), Continuation::State::Paused);
  C.setBudget({50, 0, 0});
  Continuation::Result R = C.resume();
  EXPECT_TRUE(R.Transferred);
  EXPECT_EQ(R.Status, MachineStatus::Running); // fuel exhausted mid-loop
  EXPECT_FALSE(R.Outcome.TimedOut);

  // A fresh Paused capture with more budget finishes the job; the split
  // run is observably identical to an unbudgeted one.
  Continuation C2 = Continuation::capture(*M);
  ASSERT_EQ(C2.state(), Continuation::State::Paused);
  Continuation::Result R2 = C2.resume();
  EXPECT_EQ(R2.Status, MachineStatus::Halted);
  EXPECT_EQ(M->argArea(), std::vector<Value>{b32(100000)});
}

TEST_P(ContinuationTest, ExplicitChoiceAndRefusedTransfer) {
  std::unique_ptr<Executor> M = startOn(towerSource(), {b32(3)});
  ASSERT_TRUE(M);
  ASSERT_EQ(M->run(), MachineStatus::Suspended);
  Continuation C = Continuation::capture(*M);

  // An out-of-range unwind index is a Table 1 rule violation: the executor
  // goes wrong without executing a transition, and the result says so.
  Continuation::Result Bad = C.resume(ResumeChoice::unwind(7), {});
  EXPECT_FALSE(Bad.Transferred);
  EXPECT_EQ(Bad.Status, MachineStatus::Wrong);
  EXPECT_EQ(C.state(), Continuation::State::Spent);
}

TEST_P(ContinuationTest, UnwindTopNarrowsWithoutConsuming) {
  std::unique_ptr<Executor> M = startOn(towerSource(), {b32(3)});
  ASSERT_TRUE(M);
  ASSERT_EQ(M->run(), MachineStatus::Suspended);
  Continuation C = Continuation::capture(*M);
  size_t D0 = M->stackDepth();
  ASSERT_GE(D0, 2u);

  EXPECT_TRUE(C.unwindTop(1));
  EXPECT_EQ(C.state(), Continuation::State::Suspended); // still usable
  EXPECT_EQ(M->stackDepth(), D0 - 1);

  // The same handle now resumes main's call site through its `also
  // unwinds to k` continuation.
  Continuation::Result R = C.resume(ResumeChoice::unwind(0), {});
  EXPECT_TRUE(R.Transferred);
  EXPECT_EQ(R.Status, MachineStatus::Halted);
  EXPECT_EQ(M->argArea(), std::vector<Value>{b32(222)});
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContinuationTest,
                         ::testing::ValuesIn(engine::AllBackends),
                         [](const auto &Info) {
                           return std::string(
                               engine::backendName(Info.param));
                         });

} // namespace
