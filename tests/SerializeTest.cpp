//===- tests/SerializeTest.cpp - Artifact serialization round trips -------===//
//
// Part of cmmex (see DESIGN.md). Pins the persistent-cache encodings
// (docs/ENGINE.md § "Persistent cache"):
//
//  - the binary IR encoding (ir/Serialize.h) is canonical —
//    serialize(deserialize(serialize(P))) is byte-identical — and the
//    decoded program is observationally equal to the original;
//  - the textual IL (ir/IlText.h) is a faithful sibling:
//    printIl(parseIl(printIl(P))) is a fixed point, and a parsed program
//    re-serializes to the same canonical bytes;
//  - the bytecode encoding (vm/BytecodeIO.h) round-trips against the
//    decoded IR;
//  - the `.cmmart` container (engine/ArtifactStore.h) rejects truncated,
//    bit-flipped, stale-version, and wrong-key files — corrupt cache
//    entries mean "recompile", never a misread artifact — and a
//    disk-loaded artifact runs byte-identically on all three backends.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/RandomProgram.h"
#include "engine/ArtifactStore.h"
#include "engine/Engine.h"
#include "ir/IlText.h"
#include "ir/Serialize.h"
#include "opt/PassManager.h"
#include "support/ByteIO.h"
#include "vm/BytecodeIO.h"

#include <filesystem>
#include <fstream>

using namespace cmm;
using namespace cmm::test;
using cmm::engine::ArtifactStore;
using cmm::engine::Backend;
using cmm::engine::CacheKey;
using cmm::engine::CompileRequest;

namespace {

//===----------------------------------------------------------------------===//
// Corpus and helpers
//===----------------------------------------------------------------------===//

const char *FixedCorpus[] = {
    // Straight-line arithmetic.
    "export main;\n"
    "main(bits32 n) { return (n + 1); }\n",
    // Multiple procedures, recursion, multiple results.
    "export main;\n"
    "sp(bits32 n) {\n"
    "  bits32 s, p;\n"
    "  if n == 1 { return (1, 1); }\n"
    "  s, p = sp(n - 1);\n"
    "  return (s + n, p * n);\n"
    "}\n"
    "main(bits32 n) {\n"
    "  bits32 s, p;\n"
    "  s, p = sp(n);\n"
    "  return (s + p);\n"
    "}\n",
    // Floats, globals, string data, and memory at several widths.
    "export main;\n"
    "global bits32 g;\n"
    "data buf { bits32[8]; }\n"
    "data msg { bits8 \"serialize me\"; bits8 0; }\n"
    "main(bits32 n) {\n"
    "  bits32 s;\n"
    "  float64 f;\n"
    "  g = n;\n"
    "  s = \"Hi\";\n"
    "  f = %fadd(%i2f(g), 2.25);\n"
    "  bits8[buf] = bits8[msg + 1] + bits8[s];\n"
    "  bits64[buf + 8] = %zx64(%f2i(%fmul(f, 4.0)));\n"
    "  return (bits32[buf + 8] + g);\n"
    "}\n",
};

std::vector<uint8_t> serializeProgram(const IrProgram &P) {
  ByteWriter W;
  serializeIr(P, W);
  return W.take();
}

std::unique_ptr<IrProgram> deserializeProgram(const std::vector<uint8_t> &B,
                                              std::string *Err = nullptr) {
  ByteReader R(B.data(), B.size());
  return deserializeIr(R, Err);
}

/// Runs main(5) on the walker and returns (status, results, wrong reason).
struct RunOutcome {
  MachineStatus St;
  std::vector<Value> Results;
  std::string Wrong;
};

RunOutcome runMain(const IrProgram &P, Backend B = Backend::Walk) {
  auto E = engine::makeExecutor(B, P);
  E->start("main", {b32(5)});
  RunOutcome O;
  O.St = E->run(10'000'000);
  O.Results = E->argArea();
  O.Wrong = E->wrongReason();
  return O;
}

void expectSameOutcome(const RunOutcome &A, const RunOutcome &B) {
  EXPECT_EQ(A.St, B.St);
  EXPECT_TRUE(A.Results == B.Results);
  EXPECT_EQ(A.Wrong, B.Wrong);
}

/// One full binary + textual round-trip check over \p P.
void expectRoundTrips(const IrProgram &P) {
  // Binary: serialize ∘ deserialize ∘ serialize = serialize.
  std::vector<uint8_t> B1 = serializeProgram(P);
  std::string Err;
  std::unique_ptr<IrProgram> P2 = deserializeProgram(B1, &Err);
  ASSERT_TRUE(P2) << "deserialize failed: " << Err;
  std::vector<uint8_t> B2 = serializeProgram(*P2);
  EXPECT_EQ(B1, B2) << "binary round trip not byte-identical";

  // Textual: printIl ∘ parseIl ∘ printIl = printIl, and a parsed program
  // re-serializes to the same canonical bytes as the original.
  std::string T1 = printIl(P);
  std::unique_ptr<IrProgram> P3 = parseIl(T1, &Err);
  ASSERT_TRUE(P3) << "parseIl failed: " << Err << "\n" << T1;
  EXPECT_EQ(T1, printIl(*P3)) << "textual round trip not a fixed point";
  EXPECT_EQ(B1, serializeProgram(*P3))
      << "parsed program diverges from the binary canonical form";

  // Bytecode: encode ∘ decode ∘ encode = encode, against the decoded IR.
  CompiledProgram C = compileToBytecode(*P2);
  ByteWriter BW1;
  serializeBytecode(C, *P2, BW1);
  ByteReader BR(BW1.buffer().data(), BW1.size());
  std::unique_ptr<CompiledProgram> C2 = deserializeBytecode(BR, *P2, &Err);
  ASSERT_TRUE(C2) << "deserializeBytecode failed: " << Err;
  ByteWriter BW2;
  serializeBytecode(*C2, *P2, BW2);
  EXPECT_EQ(BW1.buffer(), BW2.buffer())
      << "bytecode round trip not byte-identical";

  // The decoded program runs like the original.
  expectSameOutcome(runMain(P), runMain(*P2));
}

std::unique_ptr<IrProgram> compileOptimized(const std::string &Src) {
  std::unique_ptr<IrProgram> P = compile({Src});
  if (!P)
    return nullptr;
  OptOptions O;
  O.PlaceCalleeSaves = true;
  OptReport R = optimizeProgram(*P, O);
  EXPECT_TRUE(R.ValidationErrors.empty());
  return P;
}

//===----------------------------------------------------------------------===//
// IR and IL round trips
//===----------------------------------------------------------------------===//

TEST(SerializeIr, FixedCorpusRoundTrips) {
  for (const char *Src : FixedCorpus) {
    SCOPED_TRACE(Src);
    std::unique_ptr<IrProgram> P = compile({Src});
    ASSERT_TRUE(P);
    expectRoundTrips(*P);
  }
}

TEST(SerializeIr, OptimizedFixedCorpusRoundTrips) {
  // The optimizer rewrites expression trees (introducing sharing) and adds
  // callee-save/cut metadata; the encodings must carry all of it.
  for (const char *Src : FixedCorpus) {
    SCOPED_TRACE(Src);
    std::unique_ptr<IrProgram> P = compileOptimized(Src);
    ASSERT_TRUE(P);
    expectRoundTrips(*P);
  }
}

TEST(SerializeIr, RandomProgramsRoundTrip) {
  // Exception-heavy random programs across the dispatch design space, both
  // raw and optimized: the property-test half of the round-trip oracle.
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    RandomProgramOptions RO;
    RO.Strategy = AllDispatchTechniques[Seed % 5];
    std::string Src = generateRandomProgram(Seed, RO);
    SCOPED_TRACE("seed " + std::to_string(Seed));
    std::unique_ptr<IrProgram> P = compile({Src});
    ASSERT_TRUE(P);
    expectRoundTrips(*P);
    std::unique_ptr<IrProgram> PO = compileOptimized(Src);
    ASSERT_TRUE(PO);
    expectRoundTrips(*PO);
  }
}

TEST(SerializeIr, TruncatedInputIsRejected) {
  std::unique_ptr<IrProgram> P = compile({FixedCorpus[1]});
  ASSERT_TRUE(P);
  std::vector<uint8_t> Blob = serializeProgram(*P);
  // Every truncation point must be rejected cleanly (no crash, null
  // result), including the empty prefix.
  for (size_t Len = 0; Len < Blob.size(); Len += 7) {
    std::vector<uint8_t> Cut(Blob.begin(), Blob.begin() + Len);
    EXPECT_EQ(deserializeProgram(Cut), nullptr) << "prefix length " << Len;
  }
}

TEST(SerializeIr, VersionMismatchIsRejected) {
  std::unique_ptr<IrProgram> P = compile({FixedCorpus[0]});
  ASSERT_TRUE(P);
  std::vector<uint8_t> Blob = serializeProgram(*P);
  Blob[0] += 1; // the leading u32 format version
  std::string Err;
  EXPECT_EQ(deserializeProgram(Blob, &Err), nullptr);
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST(IlText, MalformedTextIsRejected) {
  const char *Bad[] = {
      "",
      "not-an-il-file\n",
      "cmmex-il v1\n", // stale version
      "cmmex-il v2\nproc main\nexpr 0 int 1 :bits32 @0.0\n", // no endproc
      "cmmex-il v2\nglobal g\n",                             // missing type
  };
  for (const char *Text : Bad) {
    SCOPED_TRACE(Text);
    std::string Err;
    EXPECT_EQ(parseIl(Text, &Err), nullptr);
    EXPECT_FALSE(Err.empty());
  }
}

//===----------------------------------------------------------------------===//
// The .cmmart container
//===----------------------------------------------------------------------===//

CompileRequest mainRequest(bool Optimize = false) {
  CompileRequest Req;
  Req.Sources = {FixedCorpus[1]};
  Req.Optimize = Optimize;
  if (Optimize)
    Req.Opt.PlaceCalleeSaves = true;
  return Req;
}

TEST(ArtifactContainer, RoundTripRunsIdenticallyOnAllBackends) {
  auto A = engine::compileArtifact(mainRequest(true));
  ASSERT_TRUE(A->ok());
  std::vector<uint8_t> Blob = ArtifactStore::serialize(*A);
  std::string Err;
  auto B = ArtifactStore::deserialize(Blob.data(), Blob.size(), &A->key(),
                                      &Err);
  ASSERT_TRUE(B) << Err;
  EXPECT_TRUE(B->ok());
  EXPECT_TRUE(B->key() == A->key());
  // The conformance gate: the disk-loaded artifact must be byte-identical
  // in behaviour to the freshly compiled one on every backend.
  for (Backend Bk : engine::AllBackends) {
    SCOPED_TRACE(std::string(engine::backendName(Bk)));
    auto EA = A->newExecutor(Bk);
    auto EB = B->newExecutor(Bk);
    EA->start("main", {b32(6)});
    EB->start("main", {b32(6)});
    EXPECT_EQ(EA->run(10'000'000), EB->run(10'000'000));
    EXPECT_TRUE(EA->argArea() == EB->argArea());
    EXPECT_EQ(EA->wrongReason(), EB->wrongReason());
  }
}

TEST(ArtifactContainer, CorruptTruncatedAndStaleBlobsAreRejected) {
  auto A = engine::compileArtifact(mainRequest());
  ASSERT_TRUE(A->ok());
  std::vector<uint8_t> Blob = ArtifactStore::serialize(*A);

  // Truncations.
  for (size_t Len = 0; Len < Blob.size(); Len += 13)
    EXPECT_EQ(ArtifactStore::deserialize(Blob.data(), Len, &A->key()),
              nullptr)
        << "prefix length " << Len;

  // Single-byte corruption anywhere must be caught (magic, header fields,
  // or the payload checksum).
  for (size_t I = 0; I < Blob.size(); I += 11) {
    std::vector<uint8_t> Bad = Blob;
    Bad[I] ^= 0x20;
    EXPECT_EQ(
        ArtifactStore::deserialize(Bad.data(), Bad.size(), &A->key()),
        nullptr)
        << "flipped byte " << I;
  }

  // A future container version is stale, even with a valid checksum.
  std::vector<uint8_t> Stale = Blob;
  Stale[17] += 1; // u32 version directly after the 17-byte magic
  EXPECT_EQ(ArtifactStore::deserialize(Stale.data(), Stale.size(), nullptr),
            nullptr);

  // Wrong expected key (a file renamed to another key's address).
  CacheKey Other = A->key();
  Other.Lo ^= 1;
  std::string Err;
  EXPECT_EQ(
      ArtifactStore::deserialize(Blob.data(), Blob.size(), &Other, &Err),
      nullptr);
  EXPECT_NE(Err.find("key"), std::string::npos) << Err;
}

TEST(ArtifactContainer, StoreWritesLoadsAndReportsCorruption) {
  ScratchDir Dir("store");
  auto A = engine::compileArtifact(mainRequest());
  ASSERT_TRUE(A->ok());
  std::string Err;
  ASSERT_TRUE(ArtifactStore::writeFile(Dir.str(), *A, &Err)) << Err;

  // Load back: same key, runnable program.
  auto B = ArtifactStore::loadFile(Dir.str(), A->key(), &Err);
  ASSERT_TRUE(B) << Err;
  expectSameOutcome(runMain(*A->program()), runMain(*B->program()));

  // A missing file is a quiet miss: null artifact, empty error.
  CacheKey Other = A->key();
  Other.Hi ^= 0xdead;
  Err.clear();
  EXPECT_EQ(ArtifactStore::loadFile(Dir.str(), Other, &Err), nullptr);
  EXPECT_TRUE(Err.empty()) << Err;

  // A corrupt file is a loud miss: null artifact, error set.
  std::string Path = ArtifactStore::filePath(Dir.str(), A->key());
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << "garbage";
  }
  Err.clear();
  EXPECT_EQ(ArtifactStore::loadFile(Dir.str(), A->key(), &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

} // namespace
