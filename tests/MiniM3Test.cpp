//===- tests/MiniM3Test.cpp - One source language, three policies ---------===//
//
// Part of cmmex (see DESIGN.md). The paper's thesis made executable: the
// same Mini-Modula-3 source compiles under three exception-handling
// policies (Figures 8/9, Figure 10, and Section 4.2's compiled unwinding),
// with identical observable behaviour and the cost profiles Figure 2
// predicts.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/M3Driver.h"

using namespace cmm;
using namespace cmm::test;

namespace {

const ExnPolicy AllPolicies[] = {ExnPolicy::StackCutting,
                                 ExnPolicy::RuntimeUnwinding,
                                 ExnPolicy::NativeUnwinding};

std::string policyName(const ::testing::TestParamInfo<ExnPolicy> &I) {
  switch (I.param) {
  case ExnPolicy::StackCutting: return "cutting";
  case ExnPolicy::RuntimeUnwinding: return "unwinding";
  case ExnPolicy::NativeUnwinding: return "native";
  }
  return "unknown";
}

M3RunResult build_and_run(const std::string &Src, ExnPolicy P, uint64_t X,
                          bool Optimize = false) {
  DiagnosticEngine Diags;
  std::unique_ptr<M3Program> Prog = buildM3(Src, P, Diags, Optimize);
  if (!Prog) {
    ADD_FAILURE() << "build failed: " << Diags.str();
    return {};
  }
  M3RunResult R = runM3(*Prog, X);
  if (!R.Ok)
    ADD_FAILURE() << "run failed (" << exnPolicyName(P)
                  << "): " << R.WrongReason << "\n"
                  << Prog->CmmSource;
  return R;
}

//===----------------------------------------------------------------------===//
// The Figure 7 game program
//===----------------------------------------------------------------------===//

/// A faithful Mini-Modula-3 rendition of Figure 7's TryAMove, with the
/// board logic stubbed by arithmetic: moves 0..6 succeed, 7 raises BadMove
/// with the offending square, 9 raises NoMoreTiles.
const char *tryAMoveSource() {
  return R"(
EXCEPTION BadMove(INTEGER);
EXCEPTION NoMoreTiles;
VAR movesTried: INTEGER;
VAR lastPenalty: INTEGER;

PROCEDURE GetMove(player: INTEGER): INTEGER =
BEGIN
  RETURN player * 2 + 1;
END GetMove;

PROCEDURE MakeMove(move: INTEGER) =
BEGIN
  IF move = 7 THEN RAISE BadMove(move); END;
  IF move = 9 THEN RAISE NoMoreTiles; END;
END MakeMove;

PROCEDURE BadMovePenalty(why: INTEGER): INTEGER =
BEGIN
  RETURN 100 + why;
END BadMovePenalty;

PROCEDURE TryAMove(player: INTEGER): INTEGER =
VAR result: INTEGER;
BEGIN
  result := 0;
  TRY
    MakeMove(GetMove(player));
    result := 1;
  EXCEPT
  | BadMove(why) => lastPenalty := BadMovePenalty(why); result := 2;
  | NoMoreTiles => result := 3;
  END;
  movesTried := movesTried + 1;
  RETURN result;
END TryAMove;

PROCEDURE Main(player: INTEGER): INTEGER =
VAR r: INTEGER;
BEGIN
  r := TryAMove(player);
  RETURN r * 1000 + movesTried * 100 + lastPenalty;
END Main;
)";
}

class TryAMoveTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(TryAMoveTest, NormalMove) {
  M3RunResult R = build_and_run(tryAMoveSource(), GetParam(), 1);
  EXPECT_FALSE(R.UnhandledExn);
  EXPECT_EQ(R.Value, 1100u); // result 1, movesTried 1, no penalty
}

TEST_P(TryAMoveTest, BadMoveHandlerReceivesArgument) {
  M3RunResult R = build_and_run(tryAMoveSource(), GetParam(), 3); // move 7
  EXPECT_FALSE(R.UnhandledExn);
  EXPECT_EQ(R.Value, 2100u + 107u); // result 2, movesTried 1, penalty 107
}

TEST_P(TryAMoveTest, NoMoreTilesHandler) {
  M3RunResult R = build_and_run(tryAMoveSource(), GetParam(), 4); // move 9
  EXPECT_FALSE(R.UnhandledExn);
  EXPECT_EQ(R.Value, 3100u);
}

TEST_P(TryAMoveTest, SurvivesTheOptimizer) {
  for (uint64_t X : {1, 3, 4}) {
    M3RunResult Plain = build_and_run(tryAMoveSource(), GetParam(), X);
    M3RunResult Opt =
        build_and_run(tryAMoveSource(), GetParam(), X, /*Optimize=*/true);
    EXPECT_EQ(Plain.Value, Opt.Value) << "input " << X;
    EXPECT_EQ(Plain.UnhandledExn, Opt.UnhandledExn);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, TryAMoveTest,
                         ::testing::ValuesIn(AllPolicies), policyName);

//===----------------------------------------------------------------------===//
// Cross-policy agreement on richer programs
//===----------------------------------------------------------------------===//

const char *nestedSource() {
  return R"(
EXCEPTION Inner(INTEGER);
EXCEPTION Outer(INTEGER);

PROCEDURE Boom(sel: INTEGER, v: INTEGER): INTEGER =
BEGIN
  IF sel = 1 THEN RAISE Inner(v); END;
  IF sel = 2 THEN RAISE Outer(v); END;
  RETURN v;
END Boom;

PROCEDURE Middle(sel: INTEGER, v: INTEGER): INTEGER =
BEGIN
  RETURN Boom(sel, v) + 1;
END Middle;

PROCEDURE Main(x: INTEGER): INTEGER =
VAR r: INTEGER;
VAR acc: INTEGER;
BEGIN
  acc := 0;
  TRY
    TRY
      r := Middle(x, 10);
      acc := r;
    EXCEPT
    | Inner(w) => acc := 500 + w;
    END;
    acc := acc + 1;
  EXCEPT
  | Outer(w) => acc := 900 + w;
  END;
  RETURN acc;
END Main;
)";
}

class NestedTryTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(NestedTryTest, NoRaise) {
  // Boom returns 10, Middle 11, inner TRY completes, acc = 12.
  EXPECT_EQ(build_and_run(nestedSource(), GetParam(), 0).Value, 12u);
}

TEST_P(NestedTryTest, InnerHandlerCatchesAndOuterCodeRuns) {
  // Inner(10): caught by the inner handler (510), then acc+1 = 511.
  EXPECT_EQ(build_and_run(nestedSource(), GetParam(), 1).Value, 511u);
}

TEST_P(NestedTryTest, OuterExceptionSkipsInnerHandler) {
  // Outer(10): the inner TRY has no handler for it; the outer one catches
  // it, and the "acc := acc + 1" between the TRYs must NOT run.
  EXPECT_EQ(build_and_run(nestedSource(), GetParam(), 2).Value, 910u);
}

INSTANTIATE_TEST_SUITE_P(Policies, NestedTryTest,
                         ::testing::ValuesIn(AllPolicies), policyName);

//===----------------------------------------------------------------------===//
// DivZero, loops, recursion, and unhandled exceptions
//===----------------------------------------------------------------------===//

const char *divSource() {
  return R"(
PROCEDURE Div(a: INTEGER, b: INTEGER): INTEGER =
BEGIN
  RETURN a DIV b;
END Div;

PROCEDURE Main(x: INTEGER): INTEGER =
VAR r: INTEGER;
BEGIN
  TRY
    r := Div(100, x);
  EXCEPT
  | DivZero => r := 77777;
  END;
  RETURN r;
END Main;
)";
}

class DivZeroTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(DivZeroTest, DividesNormally) {
  EXPECT_EQ(build_and_run(divSource(), GetParam(), 4).Value, 25u);
}

TEST_P(DivZeroTest, CatchesDivZero) {
  EXPECT_EQ(build_and_run(divSource(), GetParam(), 0).Value, 77777u);
}

INSTANTIATE_TEST_SUITE_P(Policies, DivZeroTest,
                         ::testing::ValuesIn(AllPolicies), policyName);

const char *unhandledSource() {
  return R"(
EXCEPTION Boom(INTEGER);
PROCEDURE Deep(n: INTEGER): INTEGER =
BEGIN
  IF n = 0 THEN RAISE Boom(42); END;
  RETURN Deep(n - 1);
END Deep;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RETURN Deep(x);
END Main;
)";
}

class UnhandledTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(UnhandledTest, ReportsTheTag) {
  M3RunResult R = build_and_run(unhandledSource(), GetParam(), 6);
  EXPECT_TRUE(R.UnhandledExn);
  EXPECT_EQ(R.Value, 1001u); // Boom's tag
}

INSTANTIATE_TEST_SUITE_P(Policies, UnhandledTest,
                         ::testing::ValuesIn(AllPolicies), policyName);

const char *loopSource() {
  return R"(
EXCEPTION Stop(INTEGER);

PROCEDURE Step(i: INTEGER, acc: INTEGER): INTEGER =
BEGIN
  IF acc > 100 THEN RAISE Stop(acc); END;
  RETURN acc + i;
END Step;

PROCEDURE Main(x: INTEGER): INTEGER =
VAR i: INTEGER;
VAR acc: INTEGER;
BEGIN
  i := 0;
  acc := 0;
  TRY
    WHILE i < x DO
      acc := Step(i, acc);
      i := i + 1;
    END;
  EXCEPT
  | Stop(v) => RETURN 10000 + v;
  END;
  RETURN acc;
END Main;
)";
}

class LoopTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(LoopTest, LoopCompletesWithoutRaise) {
  // 0+1+..+9 = 45, never exceeds 100.
  EXPECT_EQ(build_and_run(loopSource(), GetParam(), 10).Value, 45u);
}

TEST_P(LoopTest, RaiseEscapesTheLoop) {
  // acc grows past 100 around i=14; the handler returns 10000+acc.
  M3RunResult R = build_and_run(loopSource(), GetParam(), 50);
  EXPECT_GT(R.Value, 10100u);
  EXPECT_LT(R.Value, 10121u);
}

INSTANTIATE_TEST_SUITE_P(Policies, LoopTest,
                         ::testing::ValuesIn(AllPolicies), policyName);

//===----------------------------------------------------------------------===//
// Cost-profile shape checks (Figure 2)
//===----------------------------------------------------------------------===//

const char *costSource() {
  return R"(
EXCEPTION E;
PROCEDURE Deep(n: INTEGER, raise: INTEGER): INTEGER =
BEGIN
  IF n = 0 THEN
    IF raise = 1 THEN RAISE E; END;
    RETURN 1;
  END;
  RETURN Deep(n - 1, raise);
END Deep;
PROCEDURE Main(x: INTEGER): INTEGER =
VAR r: INTEGER;
BEGIN
  TRY
    r := Deep(x, x MOD 2);
  EXCEPT
  | E => r := 2;
  END;
  RETURN r;
END Main;
)";
}

TEST(PolicyCostShape, UnwindingPaysPerDepthOnRaise) {
  DiagnosticEngine Diags;
  auto P = buildM3(costSource(), ExnPolicy::RuntimeUnwinding, Diags);
  ASSERT_TRUE(P) << Diags.str();
  M3RunResult Shallow = runM3(*P, 5);  // odd: raises at depth 5
  M3RunResult Deep = runM3(*P, 41);    // odd: raises at depth 41
  ASSERT_TRUE(Shallow.Ok && Deep.Ok);
  EXPECT_EQ(Shallow.Value, 2u);
  EXPECT_EQ(Deep.Value, 2u);
  // The dispatcher's walk grows linearly with the raise depth.
  EXPECT_GE(Deep.ActivationsWalked, Shallow.ActivationsWalked + 30);
}

TEST(PolicyCostShape, UnwindingIsFreeWhenNothingRaises) {
  DiagnosticEngine Diags;
  auto P = buildM3(costSource(), ExnPolicy::RuntimeUnwinding, Diags);
  ASSERT_TRUE(P) << Diags.str();
  M3RunResult R = runM3(*P, 40); // even: no raise
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.DispatcherRuns, 0u);
  EXPECT_EQ(R.MachineStats.Yields, 0u);
}

TEST(PolicyCostShape, CuttingRaiseCostIsDepthIndependent) {
  DiagnosticEngine Diags;
  auto P = buildM3(costSource(), ExnPolicy::StackCutting, Diags);
  ASSERT_TRUE(P) << Diags.str();
  M3RunResult Shallow = runM3(*P, 5);
  M3RunResult Deep = runM3(*P, 41);
  ASSERT_TRUE(Shallow.Ok && Deep.Ok);
  // Constant-time dispatch: exactly one cut either way and no yields; the
  // only depth-dependent cost is the frames the cut discards, which a real
  // implementation skips in one stack-pointer assignment.
  EXPECT_EQ(Shallow.MachineStats.Cuts, 1u);
  EXPECT_EQ(Deep.MachineStats.Cuts, 1u);
  EXPECT_EQ(Deep.MachineStats.Yields, 0u);
}

TEST(PolicyCostShape, CuttingPaysOnScopeEntryNativeDoesNot) {
  DiagnosticEngine Diags;
  auto Cut = buildM3(costSource(), ExnPolicy::StackCutting, Diags);
  auto Native = buildM3(costSource(), ExnPolicy::NativeUnwinding, Diags);
  ASSERT_TRUE(Cut && Native) << Diags.str();
  // Run without any raise: cutting still pushes/pops the handler stack
  // (memory traffic); native unwinding's normal path stores nothing.
  M3RunResult C = runM3(*Cut, 40);
  M3RunResult N = runM3(*Native, 40);
  ASSERT_TRUE(C.Ok && N.Ok);
  EXPECT_GT(C.MachineStats.Stores, N.MachineStats.Stores);
}

} // namespace
