//===- tests/MachineTest.cpp - Transition-rule unit tests -----------------===//
//
// Part of cmmex (see DESIGN.md). Direct tests of the Section 5.2 abstract
// machine: values, memory, the argument-passing area, environments across
// calls, continuation values as first-class data, and the counters the
// benchmarks rely on.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cmm;
using namespace cmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Memory: explicit, byte-addressed, little-endian
//===----------------------------------------------------------------------===//

TEST(Memory, LoadStoreRoundTripAllWidths) {
  // The C-- type system does not convert implicitly: loads come back at
  // their access width, so each is returned separately.
  const char *Src = R"(
export main;
data buf { bits32[8]; }
main() {
  bits8[buf] = 255;
  bits16[buf + 4] = 43981;       /* 0xABCD */
  bits32[buf + 8] = 305419896;   /* 0x12345678 */
  bits64[buf + 16] = 1311768467463790320;  /* 0x123456789ABCDEF0 */
  return (bits8[buf], bits16[buf + 4], bits32[buf + 8], bits64[buf + 16]);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main");
  ASSERT_EQ(R.size(), 4u);
  EXPECT_EQ(R[0], Value::bits(8, 255));
  EXPECT_EQ(R[1], Value::bits(16, 0xABCD));
  EXPECT_EQ(R[2], Value::bits(32, 0x12345678));
  EXPECT_EQ(R[3], Value::bits(64, 0x123456789ABCDEF0ULL));
}

TEST(Memory, LittleEndianByteOrder) {
  // "The loadtype and storetype operations use the native byte order of the
  // target machine" — ours is little-endian.
  const char *Src = R"(
export main;
data buf { bits32[2]; }
main() {
  bits32[buf] = 305419896;   /* 0x12345678 */
  return (bits8[buf], bits8[buf + 1], bits8[buf + 2], bits8[buf + 3]);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main");
  ASSERT_EQ(R.size(), 4u);
  EXPECT_EQ(R[0], Value::bits(8, 0x78));
  EXPECT_EQ(R[1], Value::bits(8, 0x56));
  EXPECT_EQ(R[2], Value::bits(8, 0x34));
  EXPECT_EQ(R[3], Value::bits(8, 0x12));
}

TEST(Memory, StringLiteralsAreAddressesOfNulTerminatedData) {
  const char *Src = R"(
export main;
main() {
  bits32 s;
  s = "Hi";
  return (bits8[s], bits8[s + 1], bits8[s + 2]);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main");
  EXPECT_EQ(R[0], Value::bits(8, 'H'));
  EXPECT_EQ(R[1], Value::bits(8, 'i'));
  EXPECT_EQ(R[2], Value::bits(8, 0));
}

TEST(Memory, DataBlocksWithInitializersAndRelocations) {
  const char *Src = R"(
export main;
data table {
  bits32 10, 20, 30;
  bits32 helper;       /* relocation: the address of a procedure */
}
helper(bits32 x) { return (x * 2); }
main() {
  bits32 f, r;
  f = bits32[table + 12];
  r = f(bits32[table + 4]);   /* helper(20) */
  return (bits32[table] + r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(10 + 40));
}

//===----------------------------------------------------------------------===//
// Wrap-around arithmetic at every width
//===----------------------------------------------------------------------===//

struct ArithCase {
  const char *Expr;
  uint64_t A, B, Expected;
};

class ArithTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithTest, Evaluates) {
  const ArithCase &C = GetParam();
  std::string Src = std::string("export main;\nmain(bits32 a, bits32 b) {\n"
                                "  return (") +
                    C.Expr + ");\n}\n";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main", {b32(C.A), b32(C.B)});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Raw, C.Expected) << C.Expr << "(" << C.A << "," << C.B
                                  << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Eval, ArithTest,
    ::testing::Values(
        ArithCase{"a + b", 0xFFFFFFFF, 1, 0},          // wraps
        ArithCase{"a - b", 0, 1, 0xFFFFFFFF},          // wraps
        ArithCase{"a * b", 0x10000, 0x10000, 0},       // wraps
        ArithCase{"a / b", 0xFFFFFFF9, 2, 0xFFFFFFFD}, // signed: -7/2 = -3
        ArithCase{"a % b", 0xFFFFFFF9, 2, 0xFFFFFFFF}, // signed: -7%2 = -1
        ArithCase{"%divu(a, b)", 0xFFFFFFF9, 2, 0x7FFFFFFC},
        ArithCase{"%modu(a, b)", 7, 3, 1},
        ArithCase{"a & b", 0b1100, 0b1010, 0b1000},
        ArithCase{"a | b", 0b1100, 0b1010, 0b1110},
        ArithCase{"a ^ b", 0b1100, 0b1010, 0b0110},
        ArithCase{"a << b", 1, 31, 0x80000000},
        ArithCase{"a << b", 1, 32, 0},                 // over-shift
        ArithCase{"a >> b", 0x80000000, 31, 1},        // logical
        ArithCase{"%shra(a, b)", 0x80000000, 31, 0xFFFFFFFF}, // arithmetic
        ArithCase{"a < b", 0xFFFFFFFF, 0, 1},          // signed: -1 < 0
        ArithCase{"%ltu(a, b)", 0xFFFFFFFF, 0, 0},     // unsigned
        ArithCase{"a == b", 7, 7, 1}, ArithCase{"a != b", 7, 7, 0},
        ArithCase{"a <= b", 7, 7, 1}, ArithCase{"a >= b", 8, 7, 1},
        ArithCase{"a > b", 8, 7, 1},
        ArithCase{"%leu(a, b)", 5, 5, 1},
        ArithCase{"%gtu(a, b)", 0xFFFFFFFF, 0, 1},
        ArithCase{"%geu(a, b)", 0, 0, 1},
        ArithCase{"-a", 5, 0, 0xFFFFFFFB},
        ArithCase{"~a", 0, 0, 0xFFFFFFFF},
        ArithCase{"!a", 0, 0, 1}, ArithCase{"!a", 3, 0, 0}),
    [](const ::testing::TestParamInfo<ArithCase> &I) {
      return "op" + std::to_string(I.index);
    });

TEST(Eval, WidthConversions) {
  const char *Src = R"(
export main;
main(bits32 a) {
  bits64 w;
  w = %sx64(a);
  return (%lo32(w), %hi32(w), %lo32(%zx64(a)), %hi32(%zx64(a)));
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main", {b32(0xFFFFFFFE)});
  EXPECT_EQ(R[0], b32(0xFFFFFFFE)); // low half of sign-extension
  EXPECT_EQ(R[1], b32(0xFFFFFFFF)); // high half: sign bits
  EXPECT_EQ(R[2], b32(0xFFFFFFFE));
  EXPECT_EQ(R[3], b32(0));          // zero-extension
}

TEST(Eval, FloatArithmetic) {
  const char *Src = R"(
export main;
main() {
  float64 x, y;
  x = 1.5;
  y = %fadd(x, 2.25);
  if %flt(x, y) {
    return (%f2i(%fmul(y, 4.0)));
  }
  return (0);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(15)); // (1.5+2.25)*4 = 15
}

//===----------------------------------------------------------------------===//
// Environments, globals, frames
//===----------------------------------------------------------------------===//

TEST(Env, LocalsAreSavedAcrossCalls) {
  const char *Src = R"(
export main;
clobber() {
  bits32 x, y, z;
  x = 111; y = 222; z = 333;
  return;
}
main() {
  bits32 x, y, z;
  x = 1; y = 2; z = 3;
  clobber();
  return (x + y + z);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(6));
}

TEST(Env, GlobalsAreSharedAcrossActivations) {
  const char *Src = R"(
export main;
global bits32 g;
bump() { g = g + 1; return; }
main() {
  g = 10;
  bump();
  bump();
  bump();
  return (g);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(13));
  EXPECT_EQ(M.getGlobal("g")->Raw, 13u);
}

TEST(Env, CallResultsCanTargetGlobals) {
  const char *Src = R"(
export main;
global bits32 g;
two() { return (2, 20); }
main() {
  bits32 r;
  r, g = two();
  return (r + g);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(22));
}

//===----------------------------------------------------------------------===//
// Continuation values are first-class data
//===----------------------------------------------------------------------===//

TEST(Continuations, CanBePassedStoredAndCompared) {
  // "A continuation value may be passed to procedures or stored in data
  // structures; its type is the native data-pointer type" (Section 4.1).
  const char *Src = R"(
export main;
data slot { bits32[1]; }
invoke(bits32 kv) {
  cut to kv(41);
}
main() {
  bits32 t, same;
  bits32[slot] = k;
  same = 0;
  if bits32[slot] == k { same = 1; }
  invoke(bits32[slot]) also cuts to k also aborts;
  return (0, 0);
continuation k(t):
  return (t + same, same);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main");
  EXPECT_EQ(R[0], b32(42));
  EXPECT_EQ(R[1], b32(1)); // the stored value compared equal to k
}

TEST(Continuations, SizeofIsOnePointer) {
  // sizeof(k) for a continuation is one native pointer (Section 5.4's
  // representation discussion; Figure 10 depends on it).
  const char *Src = R"(
export main;
main() {
  bits32 t;
  goto done;
continuation k(t):
  return (0);
done:
  return (sizeof(k));
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(4));
}

TEST(Continuations, FreshPerActivation) {
  // Each Entry binds fresh continuation values: two activations of the same
  // procedure have different continuations for the same source name.
  const char *Src = R"(
export main;
probe(bits32 depth) {
  bits32 t, r;
  if depth == 0 {
    return (k);
  }
  r = probe(depth - 1) also aborts;
  if r == k { return (1); }   /* same value? must not be */
  return (0);
continuation k(t):
  return (t);
}
main() {
  bits32 r;
  r = probe(1) also aborts;
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(0));
  EXPECT_GE(M.stats().ContsBound, 2u);
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(Stats, CountsWhatHappened) {
  const char *Src = R"(
export main;
leaf() { return (1); }
main() {
  bits32 a, b;
  a = leaf();
  b = leaf();
  bits32[4096] = a;
  a = bits32[4096];
  return (a + b);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  runToHalt(M, "main");
  EXPECT_EQ(M.stats().Calls, 2u);
  EXPECT_EQ(M.stats().Returns, 2u);
  EXPECT_EQ(M.stats().Stores, 1u);
  EXPECT_EQ(M.stats().Loads, 1u);
  EXPECT_EQ(M.stats().MaxStackDepth, 1u);
}

TEST(Machine, CanBeRestarted) {
  const char *Src = R"(
export main;
global bits32 g;
main(bits32 x) {
  g = g + x;
  return (g);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(5));
  // start() resets globals and memory: the second run is independent.
  EXPECT_EQ(runToHalt(M, "main", {b32(7)})[0], b32(7));
}

TEST(Machine, StepLimitLeavesMachineRunning) {
  const char *Src = R"(
export main;
main() {
loop:
  goto loop;
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main");
  EXPECT_EQ(M.run(1000), MachineStatus::Running);
  EXPECT_EQ(M.run(1000), MachineStatus::Running); // can continue
}

} // namespace
