//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#ifndef CMM_TESTS_TESTUTIL_H
#define CMM_TESTS_TESTUTIL_H

#include "ir/Translate.h"
#include "ir/Validate.h"
#include "sem/Machine.h"
#include "svc/Client.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <optional>
#include <unistd.h>

namespace cmm::test {

/// Compiles \p Sources (plus the standard library); fails the test and
/// returns null on any diagnostic.
inline std::unique_ptr<IrProgram>
compile(const std::vector<std::string> &Sources, bool IncludeStdLib = true) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog =
      compileProgram(Sources, Diags, IncludeStdLib);
  if (!Prog || Diags.hasErrors()) {
    ADD_FAILURE() << "compilation failed:\n" << Diags.str();
    return nullptr;
  }
  DiagnosticEngine VDiags;
  if (!validateProgram(*Prog, VDiags)) {
    ADD_FAILURE() << "IR validation failed:\n" << VDiags.str();
    return nullptr;
  }
  return Prog;
}

/// Expects compilation of \p Source to fail and returns the diagnostics.
inline std::string compileError(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram({Source}, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected compilation to fail";
  return Diags.str();
}

/// Runs \p Proc to completion and returns the result values; fails the test
/// if the machine does not halt normally.
inline std::vector<Value> runToHalt(Machine &M, std::string_view Proc,
                                    std::vector<Value> Args = {},
                                    uint64_t MaxSteps = 10'000'000) {
  M.start(Proc, std::move(Args));
  MachineStatus St = M.run(MaxSteps);
  if (St != MachineStatus::Halted) {
    ADD_FAILURE() << "machine did not halt; status="
                  << static_cast<int>(St) << " reason=" << M.wrongReason();
    return {};
  }
  return M.argArea();
}

/// Shorthand for a bits32 value.
inline Value b32(uint64_t V) { return Value::bits(32, V); }

/// A scratch directory under the gtest temp root, recreated empty on
/// construction and removed on destruction (persistent-cache tests).
struct ScratchDir {
  std::filesystem::path Dir;
  explicit ScratchDir(const char *Tag) {
    Dir = std::filesystem::path(::testing::TempDir()) /
          (std::string("cmmex_") + Tag + "_" + std::to_string(::getpid()));
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
    std::filesystem::create_directories(Dir, Ec);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::string str() const { return Dir.string(); }
};

/// An in-process cmmexd (svc::Server) on an ephemeral endpoint, torn down
/// gracefully on destruction. Hermetic and parallel-safe: the Unix socket
/// path is derived from the pid plus a per-process sequence number, so any
/// number of harnesses may coexist across concurrently running test
/// binaries (`ctest -j`). Defaults to a Unix socket; pass O.UseTcp for the
/// TCP transport (port 0 binds ephemerally — read server().tcpPort()).
class ServiceHarness {
public:
  explicit ServiceHarness(svc::ServerOptions O = {}) {
    static std::atomic<unsigned> Seq{0};
    if (!O.UseTcp && O.UnixPath.empty())
      O.UnixPath = (std::filesystem::temp_directory_path() /
                    ("cmmexd_" + std::to_string(::getpid()) + "_" +
                     std::to_string(Seq.fetch_add(1)) + ".sock"))
                       .string();
    if (O.Threads == 0)
      O.Threads = 2; // deterministic footprint under parallel ctest
    Srv.emplace(std::move(O));
    std::string Err;
    Ok = Srv->start(&Err);
    EXPECT_TRUE(Ok) << "service harness failed to start: " << Err;
  }

  ~ServiceHarness() {
    Srv->requestStop(); // idempotent: no-op after a client ReqShutdown
    Srv->join();
  }

  bool ok() const { return Ok; }
  svc::Server &server() { return *Srv; }

  /// A fresh connection to the harness server.
  std::unique_ptr<svc::Client> client() {
    std::string Err;
    std::unique_ptr<svc::Client> C =
        Srv->unixPath().empty()
            ? svc::Client::connectTcp("127.0.0.1", Srv->tcpPort(), &Err)
            : svc::Client::connectUnix(Srv->unixPath(), &Err);
    EXPECT_TRUE(C) << "service harness connect failed: " << Err;
    return C;
  }

private:
  std::optional<svc::Server> Srv;
  bool Ok = false;
};

} // namespace cmm::test

#endif // CMM_TESTS_TESTUTIL_H
