//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#ifndef CMM_TESTS_TESTUTIL_H
#define CMM_TESTS_TESTUTIL_H

#include "ir/Translate.h"
#include "ir/Validate.h"
#include "sem/Machine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

namespace cmm::test {

/// Compiles \p Sources (plus the standard library); fails the test and
/// returns null on any diagnostic.
inline std::unique_ptr<IrProgram>
compile(const std::vector<std::string> &Sources, bool IncludeStdLib = true) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog =
      compileProgram(Sources, Diags, IncludeStdLib);
  if (!Prog || Diags.hasErrors()) {
    ADD_FAILURE() << "compilation failed:\n" << Diags.str();
    return nullptr;
  }
  DiagnosticEngine VDiags;
  if (!validateProgram(*Prog, VDiags)) {
    ADD_FAILURE() << "IR validation failed:\n" << VDiags.str();
    return nullptr;
  }
  return Prog;
}

/// Expects compilation of \p Source to fail and returns the diagnostics.
inline std::string compileError(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<IrProgram> Prog = compileProgram({Source}, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected compilation to fail";
  return Diags.str();
}

/// Runs \p Proc to completion and returns the result values; fails the test
/// if the machine does not halt normally.
inline std::vector<Value> runToHalt(Machine &M, std::string_view Proc,
                                    std::vector<Value> Args = {},
                                    uint64_t MaxSteps = 10'000'000) {
  M.start(Proc, std::move(Args));
  MachineStatus St = M.run(MaxSteps);
  if (St != MachineStatus::Halted) {
    ADD_FAILURE() << "machine did not halt; status="
                  << static_cast<int>(St) << " reason=" << M.wrongReason();
    return {};
  }
  return M.argArea();
}

/// Shorthand for a bits32 value.
inline Value b32(uint64_t V) { return Value::bits(32, V); }

/// A scratch directory under the gtest temp root, recreated empty on
/// construction and removed on destruction (persistent-cache tests).
struct ScratchDir {
  std::filesystem::path Dir;
  explicit ScratchDir(const char *Tag) {
    Dir = std::filesystem::path(::testing::TempDir()) /
          (std::string("cmmex_") + Tag + "_" + std::to_string(::getpid()));
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
    std::filesystem::create_directories(Dir, Ec);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::string str() const { return Dir.string(); }
};

} // namespace cmm::test

#endif // CMM_TESTS_TESTUTIL_H
