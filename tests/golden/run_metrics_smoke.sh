#!/bin/sh
# run_metrics_smoke.sh CMMI CMMSTAT PROGRAM [cmmi args...]
#
# Tier-1 telemetry smoke: run cmmi with --metrics-json and check that the
# emitted snapshot is JSON cmmstat recognizes as a metrics document.
set -e
CMMI=$1
CMMSTAT=$2
shift 2

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$CMMI" --metrics-json "$TMP/metrics.json" "$@" > /dev/null
"$CMMSTAT" --check "$TMP/metrics.json"
