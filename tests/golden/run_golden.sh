#!/bin/sh
# run_golden.sh <cmmi> <expected-stdout-file> <expected-exit> <stderr-fragment|-> <cmmi args...>
#
# End-to-end golden driver for the cmmi CLI: runs cmmi with the given
# arguments, then checks (1) the exit status, (2) stdout against the
# checked-in expectation byte for byte, and (3) optionally that stderr
# contains a fragment (for goes-wrong and unhandled-yield cases, whose
# diagnostics go to stderr). Used from tests/CMakeLists.txt with every case
# run under both --backend=walk and --backend=vm.
set -u
CMMI=$1
EXPECTED=$2
WANT_EXIT=$3
FRAG=$4
shift 4

TMP=$(mktemp -d) || exit 99
trap 'rm -rf "$TMP"' EXIT INT TERM

"$CMMI" "$@" >"$TMP/out" 2>"$TMP/err"
GOT_EXIT=$?

FAIL=0
if [ "$GOT_EXIT" -ne "$WANT_EXIT" ]; then
  echo "FAIL: exit status $GOT_EXIT, want $WANT_EXIT"
  FAIL=1
fi
if ! diff -u "$EXPECTED" "$TMP/out"; then
  echo "FAIL: stdout differs from $EXPECTED"
  FAIL=1
fi
if [ "$FRAG" != "-" ] && ! grep -Fq "$FRAG" "$TMP/err"; then
  echo "FAIL: stderr lacks fragment '$FRAG'"
  FAIL=1
fi
if [ "$FAIL" -ne 0 ]; then
  echo "--- stderr ---"
  cat "$TMP/err"
  exit 1
fi
exit 0
