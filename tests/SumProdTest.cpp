//===- tests/SumProdTest.cpp - Figure 1 programs --------------------------===//
//
// Part of cmmex (see DESIGN.md). Experiment F1: the three sum-and-product
// procedures of Figure 1 — ordinary recursion with multiple results, tail
// recursion through `jump`, and an explicit loop with `goto`.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace cmm;
using namespace cmm::test;

namespace {

const char *sumProdSource() {
  return R"(
/* Ordinary recursion */
export sp1;
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 {
    return (1, 1);
  } else {
    s, p = sp1(n - 1);
    return (s + n, p * n);
  }
}

/* Tail recursion */
export sp2;
sp2(bits32 n) {
  jump sp2_help(n, 1, 1);
}
sp2_help(bits32 n, bits32 s, bits32 p) {
  if n == 1 {
    return (s, p);
  } else {
    jump sp2_help(n - 1, s + n, p * n);
  }
}

/* Loops */
export sp3;
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 {
    return (s, p);
  } else {
    s = s + n;
    p = p * n;
    n = n - 1;
    goto loop;
  }
}
)";
}

struct SumProdCase {
  const char *Proc;
  uint64_t N, Sum, Product;

  friend void PrintTo(const SumProdCase &C, std::ostream *Os) {
    *Os << C.Proc << "_n" << C.N;
  }
};

class SumProdTest : public ::testing::TestWithParam<SumProdCase> {};

TEST_P(SumProdTest, ComputesSumAndProduct) {
  auto Prog = compile({sumProdSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  const SumProdCase &C = GetParam();
  std::vector<Value> R = runToHalt(M, C.Proc, {b32(C.N)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], b32(C.Sum)) << C.Proc << "(" << C.N << ") sum";
  EXPECT_EQ(R[1], b32(C.Product)) << C.Proc << "(" << C.N << ") product";
}

std::vector<SumProdCase> allCases() {
  std::vector<SumProdCase> Cases;
  for (const char *Proc : {"sp1", "sp2", "sp3"}) {
    uint64_t Sum = 0, Product = 1;
    for (uint64_t N = 1; N <= 12; ++N) {
      Sum += N;
      Product *= N;
      // The paper's procedures compute sum/product of 1..n.
      Cases.push_back({Proc, N, N == 1 ? 1 : Sum,
                       N == 1 ? 1 : Product});
    }
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Figure1, SumProdTest,
                         ::testing::ValuesIn(allCases()),
                         [](const ::testing::TestParamInfo<SumProdCase> &I) {
                           return std::string(I.param.Proc) + "_n" +
                                  std::to_string(I.param.N);
                         });

TEST(SumProdShape, TailCallsDoNotGrowTheStack) {
  auto Prog = compile({sumProdSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  runToHalt(M, "sp2", {b32(200)});
  // sp2 jumps to sp2_help which jumps to itself: one activation, ever.
  EXPECT_EQ(M.stats().Jumps, 200u);
  EXPECT_LE(M.stats().MaxStackDepth, 1u);

  Machine M2(*Prog);
  runToHalt(M2, "sp1", {b32(200)});
  EXPECT_GE(M2.stats().MaxStackDepth, 199u);
}

TEST(SumProdShape, LoopUsesNoCallsAtAll) {
  auto Prog = compile({sumProdSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  runToHalt(M, "sp3", {b32(100)});
  EXPECT_EQ(M.stats().Calls, 0u);
  EXPECT_EQ(M.stats().Jumps, 0u);
}

} // namespace
