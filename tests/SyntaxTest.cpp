//===- tests/SyntaxTest.cpp - Lexer, parser, printer, Sema ----------------===//
//
// Part of cmmex (see DESIGN.md). The concrete C-- language layer: token
// coverage, the parse -> print round trip (a fixpoint after one iteration),
// and the static checks Sema enforces for the paper's annotation rules.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "costmodel/RandomProgram.h"
#include "syntax/AstPrinter.h"
#include "syntax/Lexer.h"
#include "syntax/Parser.h"

using namespace cmm;
using namespace cmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<Token> lexAll(const std::string &Src, DiagnosticEngine &Diags) {
  Lexer L(Src, Diags);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    bool End = T.is(TokKind::Eof);
    Out.push_back(std::move(T));
    if (End)
      return Out;
  }
}

TEST(Lexer, TokensAndLocations) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = lexAll("foo(bits32 n) {\n  n = 0x1F + 2;\n}", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_GE(Ts.size(), 12u);
  EXPECT_EQ(Ts[0].Kind, TokKind::Ident);
  EXPECT_EQ(Ts[0].Text, "foo");
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[2].Kind, TokKind::KwBits32);
  // 0x1F on line 2.
  bool SawHex = false;
  for (const Token &T : Ts)
    if (T.is(TokKind::IntLit) && T.IntValue == 0x1F) {
      SawHex = true;
      EXPECT_EQ(T.Loc.Line, 2u);
    }
  EXPECT_TRUE(SawHex);
}

TEST(Lexer, PrimitiveNamesAndOperators) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts =
      lexAll("%divu %%divu a %% b << >> <= >= == != < >", Diags);
  EXPECT_EQ(Ts[0].Kind, TokKind::PrimName);
  EXPECT_EQ(Ts[0].Text, "%divu");
  EXPECT_EQ(Ts[1].Kind, TokKind::PrimName);
  EXPECT_EQ(Ts[1].Text, "%%divu");
  // A lone '%' (even doubled) lexes as modulus operators.
  EXPECT_EQ(Ts[3].Kind, TokKind::Percent);
  std::vector<TokKind> Kinds;
  for (const Token &T : Ts)
    Kinds.push_back(T.Kind);
  for (TokKind K : {TokKind::Shl, TokKind::Shr, TokKind::LessEq,
                    TokKind::GreaterEq, TokKind::EqEq, TokKind::NotEq,
                    TokKind::Less, TokKind::Greater})
    EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), K), Kinds.end());
}

TEST(Lexer, CommentsAndStrings) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = lexAll(
      "/* block\ncomment */ a // line comment\n \"s\\n\\\"x\\0\"", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Ts[0].Kind, TokKind::Ident);
  EXPECT_EQ(Ts[1].Kind, TokKind::StrLit);
  EXPECT_EQ(Ts[1].Text, std::string("s\n\"x\0", 5));
}

TEST(Lexer, ErrorsOnBadInput) {
  DiagnosticEngine D1;
  lexAll("/* never closed", D1);
  EXPECT_TRUE(D1.hasErrors());
  DiagnosticEngine D2;
  lexAll("\"never closed", D2);
  EXPECT_TRUE(D2.hasErrors());
  DiagnosticEngine D3;
  lexAll("a $ b", D3);
  EXPECT_TRUE(D3.hasErrors());
}

TEST(Lexer, FloatLiterals) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = lexAll("1.5 2.25e2 7", Diags);
  EXPECT_EQ(Ts[0].Kind, TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(Ts[0].FloatValue, 1.5);
  EXPECT_EQ(Ts[1].Kind, TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(Ts[1].FloatValue, 225.0);
  EXPECT_EQ(Ts[2].Kind, TokKind::IntLit);
}

//===----------------------------------------------------------------------===//
// Parse -> print round trip
//===----------------------------------------------------------------------===//

/// print(parse(print(parse(Src)))) == print(parse(Src)).
void expectRoundTrip(const std::string &Src) {
  DiagnosticEngine D1;
  Parser P1(Src, D1);
  Module M1 = P1.parseModule();
  ASSERT_FALSE(D1.hasErrors()) << D1.str() << "\nsource:\n" << Src;
  std::string Printed = printModule(M1);

  DiagnosticEngine D2;
  Parser P2(Printed, D2);
  Module M2 = P2.parseModule();
  ASSERT_FALSE(D2.hasErrors()) << D2.str() << "\nprinted:\n" << Printed;
  EXPECT_EQ(Printed, printModule(M2)) << "original:\n" << Src;
}

TEST(RoundTrip, DispatchWorkloads) {
  for (DispatchTechnique T : AllDispatchTechniques)
    expectRoundTrip(dispatchWorkloadSource(T));
}

TEST(RoundTrip, StdLib) { expectRoundTrip(stdLibSource()); }

TEST(RoundTrip, AllSyntaxFeatures) {
  expectRoundTrip(R"(
export f, %%checked;
import ext_data;
global bits32 g;
register bits64 wide;
data blob {
  bits32 1, 2, 3;
  bits8 "text";
  bits32 f;
  bits16[10];
}
%%checked(bits32 a) {
  if a == 0 { yield(1) also aborts; }
  return (a);
}
f(bits32 x, float64 w) {
  bits32 a, b, t, u;
  float32 h;
  a = (x + 1) * 2 - (3 & x | 4 ^ 5);
  b = x << 2 >> 1;
  a = -x + ~b;
  a = !(x < 1);
  bits32[g + 4] = bits32[g] + sizeof(a);
  if a >= b {
    goto out;
  } else {
    a, b = f(a, w) also cuts to k1 also unwinds to k2
           also returns to k3 also aborts descriptors blob, 7;
  }
out:
  jump f(a, w);
continuation k1(t, u):
  cut to t(u) also cuts to k1;
continuation k2(t):
  return <0/1> (t);
continuation k3(t, u):
  return (t, u);
}
)");
}

class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, GeneratedProgramsRoundTrip) {
  expectRoundTrip(generateRandomProgram(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Range<uint64_t>(100, 120));

//===----------------------------------------------------------------------===//
// Sema: the static rules of the paper
//===----------------------------------------------------------------------===//

TEST(Sema, AnnotationMustNameContinuationOfSameProcedure) {
  // "The names appearing in these annotations ... are always names of
  // continuations declared in the same procedure as the call site"
  // (Section 4.4).
  std::string Err = compileError(R"(
export main;
other() {
  bits32 t;
  goto done;
continuation k(t):
  return;
done:
  return;
}
main() {
  other() also cuts to k;
  return (0);
}
)");
  EXPECT_NE(Err.find("not a continuation"), std::string::npos) << Err;
}

TEST(Sema, ContinuationParamsMustBeProcedureVariables) {
  // "The 'formal parameters' of a continuation must be variables of the
  // enclosing procedure" (Section 4.1).
  std::string Err = compileError(R"(
export main;
main() {
  goto done;
continuation k(undeclared):
  return;
done:
  return (0);
}
)");
  EXPECT_NE(Err.find("must be a variable"), std::string::npos) << Err;
}

TEST(Sema, GotoTargetMustBeLabelInSameProcedure) {
  std::string Err = compileError(R"(
export main;
other() {
somewhere:
  return;
}
main() {
  goto somewhere;
}
)");
  EXPECT_NE(Err.find("not a label"), std::string::npos) << Err;
}

TEST(Sema, FallthroughIntoContinuationRejected) {
  std::string Err = compileError(R"(
export main;
main() {
  bits32 t;
  t = 1;
continuation k(t):
  return (t);
}
)");
  EXPECT_NE(Err.find("fall through"), std::string::npos) << Err;
}

TEST(Sema, YieldIsReserved) {
  std::string Err = compileError("yield() { return; }\n");
  EXPECT_NE(Err.find("reserved"), std::string::npos) << Err;
}

TEST(Sema, DuplicateAndUndeclaredNames) {
  EXPECT_NE(compileError("export f;\nf() { return; }\nf() { return; }\n")
                .find("redefinition"),
            std::string::npos);
  EXPECT_NE(compileError("export f;\nf() { bits32 a, a; return; }\n")
                .find("redeclaration"),
            std::string::npos);
  EXPECT_NE(compileError("export f;\nf() { return (nope); }\n")
                .find("undeclared"),
            std::string::npos);
  EXPECT_NE(compileError("export f;\nimport missing_thing;\nf() { "
                         "return (missing_thing); }\n")
                .find("unresolved import"),
            std::string::npos);
}

TEST(Sema, WidthMismatchesAreRejected) {
  std::string Err = compileError(R"(
export f;
f(bits32 a, bits64 b) {
  return (a + b);
}
)");
  EXPECT_NE(Err.find("operand types differ"), std::string::npos) << Err;
}

TEST(Sema, LiteralsAdoptContextWidth) {
  const char *Src = R"(
export f;
f(bits64 a) {
  bits64 b;
  b = a + 1;          /* 1 becomes bits64 */
  if b > 10 { return (b); }
  return (0 - b);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "f", {Value::bits(64, 20)});
  EXPECT_EQ(R[0], Value::bits(64, 21));
}

TEST(Sema, ReturnIndexMustNotExceedCount) {
  std::string Err =
      compileError("export f;\nf() { return <3/2> (1); }\n");
  EXPECT_NE(Err.find("exceeds"), std::string::npos) << Err;
}

TEST(Sema, DescriptorsMustBeLinkTimeConstants) {
  std::string Err = compileError(R"(
export main;
g() { return; }
main(bits32 x) {
  g() descriptors x;
  return (0);
}
)");
  EXPECT_NE(Err.find("link-time"), std::string::npos) << Err;
}

TEST(Sema, CutToStatementAllowsOnlyCutsToAnnotation) {
  std::string Err = compileError(R"(
export main;
main(bits32 x) {
  cut to x() also aborts;
}
)");
  EXPECT_NE(Err.find("only 'also cuts to'"), std::string::npos) << Err;
}

TEST(Sema, SlowPrimitivesAreNotExpressions) {
  std::string Err = compileError(R"(
export main;
main(bits32 x) {
  return (%%divu(x, 2) + 1);
}
)");
  EXPECT_NE(Err.find("procedure"), std::string::npos) << Err;
}

TEST(Sema, VariableContinuationCollision) {
  std::string Err = compileError(R"(
export main;
main() {
  bits32 k;
  goto done;
continuation k():
  return;
done:
  return (0);
}
)");
  EXPECT_NE(Err.find("collides"), std::string::npos) << Err;
}

} // namespace
