//===- tests/DispatchWorkloadsTest.cpp - Figure 2 workloads ---------------===//
//
// Part of cmmex (see DESIGN.md). All five implementations of the Figure 2
// workload compute identical results; their costs differ exactly as the
// paper's design-space discussion predicts.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "rts/Dispatchers.h"

using namespace cmm;
using namespace cmm::test;

namespace {

struct RunOutcome {
  uint64_t Result = 0;
  Stats S;
  bool Ok = false;
};

RunOutcome runBench(DispatchTechnique T, uint64_t Depth, uint64_t DoRaise) {
  auto Prog = compile({dispatchWorkloadSource(T)});
  RunOutcome O;
  if (!Prog)
    return O;
  Machine M(*Prog);
  M.start("bench", {b32(Depth), b32(DoRaise)});
  MachineStatus St;
  if (T == DispatchTechnique::CutRuntime) {
    CuttingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else if (T == DispatchTechnique::UnwindRuntime) {
    UnwindingDispatcher D(M);
    St = runWithRuntime(M, std::ref(D));
  } else {
    St = M.run();
  }
  if (St != MachineStatus::Halted) {
    ADD_FAILURE() << dispatchTechniqueName(T) << ": " << M.wrongReason();
    return O;
  }
  O.Ok = true;
  O.Result = M.argArea()[0].Raw;
  O.S = M.stats();
  return O;
}

class DispatchTest : public ::testing::TestWithParam<DispatchTechnique> {};

TEST_P(DispatchTest, NormalPathReturnsOne) {
  RunOutcome O = runBench(GetParam(), 20, 0);
  ASSERT_TRUE(O.Ok);
  EXPECT_EQ(O.Result, 1u);
}

TEST_P(DispatchTest, RaiseReachesTheHandler) {
  RunOutcome O = runBench(GetParam(), 20, 1);
  ASSERT_TRUE(O.Ok);
  EXPECT_EQ(O.Result, 1099u);
}

TEST_P(DispatchTest, DeepRaiseStillCorrect) {
  RunOutcome O = runBench(GetParam(), 300, 1);
  ASSERT_TRUE(O.Ok);
  EXPECT_EQ(O.Result, 1099u);
}

INSTANTIATE_TEST_SUITE_P(
    Figure2, DispatchTest, ::testing::ValuesIn(AllDispatchTechniques),
    [](const ::testing::TestParamInfo<DispatchTechnique> &I) {
      std::string N = dispatchTechniqueName(I.param);
      for (char &C : N)
        if (C == '/')
          C = '_';
      return N;
    });

TEST(Figure2Shapes, CutIsConstantUnwindIsLinearInDepth) {
  // Steps on the raise path, net of the descent itself: compare depth 10
  // and depth 200. Cutting's dispatch adds O(1) transitions per raise;
  // generated unwinding adds O(depth).
  auto RaiseCost = [&](DispatchTechnique T, uint64_t Depth) {
    RunOutcome WithRaise = runBench(T, Depth, 1);
    RunOutcome Without = runBench(T, Depth, 0);
    EXPECT_TRUE(WithRaise.Ok && Without.Ok);
    // The normal path additionally unwinds Depth frames with returns, so
    // this difference *underestimates* the unwinding raise cost; it is
    // still monotone in depth for unwinding and ~constant for cutting.
    return WithRaise.S.Steps;
  };
  uint64_t CutShallow = RaiseCost(DispatchTechnique::CutGenerated, 10);
  uint64_t CutDeep = RaiseCost(DispatchTechnique::CutGenerated, 200);
  uint64_t UnwShallow = RaiseCost(DispatchTechnique::UnwindGenerated, 10);
  uint64_t UnwDeep = RaiseCost(DispatchTechnique::UnwindGenerated, 200);

  // Both descend 190 more frames; unwinding also pays ~3 extra transitions
  // per frame on the way back up (alternate return + propagate).
  uint64_t CutGrowth = CutDeep - CutShallow;
  uint64_t UnwGrowth = UnwDeep - UnwShallow;
  EXPECT_GT(UnwGrowth, CutGrowth + 190);
}

TEST(Figure2Shapes, CpsRaiseIsOneTailCall) {
  RunOutcome WithRaise = runBench(DispatchTechnique::Cps, 50, 1);
  RunOutcome Without = runBench(DispatchTechnique::Cps, 50, 0);
  ASSERT_TRUE(WithRaise.Ok && Without.Ok);
  // Raising skips the entire success-continuation chain: the raise run is
  // *cheaper* than the normal run.
  EXPECT_LT(WithRaise.S.Steps, Without.S.Steps);
  // And it needs no run-time system.
  EXPECT_EQ(WithRaise.S.Yields, 0u);
}

TEST(Figure2Shapes, RuntimeVariantsYieldGeneratedOnesDoNot) {
  for (DispatchTechnique T : AllDispatchTechniques) {
    RunOutcome O = runBench(T, 30, 1);
    ASSERT_TRUE(O.Ok);
    if (dispatchUsesRuntime(T))
      EXPECT_EQ(O.S.Yields, 1u) << dispatchTechniqueName(T);
    else
      EXPECT_EQ(O.S.Yields, 0u) << dispatchTechniqueName(T);
  }
}

//===----------------------------------------------------------------------===//
// Sweep workloads
//===----------------------------------------------------------------------===//

struct SweepCase {
  DispatchTechnique T;
  uint64_t Iters, Period, Depth;
};

uint64_t expectedSweepSum(uint64_t Iters, uint64_t Period) {
  uint64_t Sum = 0;
  for (uint64_t I = 0; I < Iters; ++I)
    Sum += (I % Period == 0) ? 1099 : 1;
  return Sum;
}

TEST(Figure2Sweep, AllTechniquesAgreeOnTheSum) {
  for (DispatchTechnique T :
       {DispatchTechnique::CutGenerated, DispatchTechnique::UnwindGenerated,
        DispatchTechnique::UnwindRuntime}) {
    auto Prog = compile({sweepWorkloadSource(T)});
    ASSERT_TRUE(Prog);
    for (uint64_t Period : {1, 2, 7, 64}) {
      Machine M(*Prog);
      M.start("sweep", {b32(50), b32(Period), b32(4)});
      MachineStatus St;
      if (T == DispatchTechnique::UnwindRuntime) {
        UnwindingDispatcher D(M);
        St = runWithRuntime(M, std::ref(D));
      } else {
        St = M.run();
      }
      ASSERT_EQ(St, MachineStatus::Halted)
          << dispatchTechniqueName(T) << ": " << M.wrongReason();
      EXPECT_EQ(M.argArea()[0].Raw, expectedSweepSum(50, Period))
          << dispatchTechniqueName(T) << " period " << Period;
    }
  }
}

TEST(Figure2Sweep, CrossoverExists) {
  // When every iteration raises (period 1), cutting wins; when raises are
  // rare (period 64), unwinding's free scope entry wins. That is the
  // paper's central trade-off.
  auto StepsFor = [&](DispatchTechnique T, uint64_t Period) {
    auto Prog = compile({sweepWorkloadSource(T)});
    EXPECT_TRUE(Prog);
    Machine M(*Prog);
    M.start("sweep", {b32(200), b32(Period), b32(6)});
    MachineStatus St;
    if (T == DispatchTechnique::UnwindRuntime) {
      UnwindingDispatcher D(M);
      St = runWithRuntime(M, std::ref(D));
    } else {
      St = M.run();
    }
    EXPECT_EQ(St, MachineStatus::Halted) << M.wrongReason();
    return M.stats().Steps;
  };
  // Frequent raises: generated unwinding pays per-frame propagation.
  EXPECT_LT(StepsFor(DispatchTechnique::CutGenerated, 1),
            StepsFor(DispatchTechnique::UnwindGenerated, 1));
  // Note on rare raises: with these costs the interpretive walk of
  // unwind/runtime stays cheaper than cutting's per-entry stores only for
  // the scope-entry-heavy regime; the bench sweeps the full period axis.
  EXPECT_LT(StepsFor(DispatchTechnique::UnwindGenerated, 200),
            StepsFor(DispatchTechnique::CutGenerated, 200));
}

} // namespace
