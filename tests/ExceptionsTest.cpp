//===- tests/ExceptionsTest.cpp - Figures 8 and 10 in raw C-- -------------===//
//
// Part of cmmex (see DESIGN.md). Experiments F7-F10: the paper's two
// Modula-3 implementation sketches, written directly in C--:
//  - run-time stack unwinding through the Figure 9 dispatcher, and
//  - stack cutting with an in-memory handler stack (Figure 10),
// plus the compiled (native-code) unwinding technique via return <i/n>.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "rts/Dispatchers.h"

using namespace cmm;
using namespace cmm::test;

namespace {

// Exception tags chosen by the "front end".
constexpr uint64_t TagBadMove = 101;
constexpr uint64_t TagNoMoreTiles = 102;

//===----------------------------------------------------------------------===//
// Run-time stack unwinding (Figures 8 and 9)
//===----------------------------------------------------------------------===//

const char *unwindSource() {
  return R"(
export main;
global bits32 moves_tried;

/* Figure 9's struct exn_descriptor for try_a_move's handler scope:
   BadMove -> continuation 0 (takes the argument),
   NoMoreTiles -> continuation 1. */
data desc_try {
  bits32 2;
  bits32 101; bits32 0; bits32 1;
  bits32 102; bits32 1; bits32 0;
}

/* RAISE compiles to a yield carrying (tag, argument). */
make_move(bits32 t) {
  if t == 7 { yield(101, 42) also aborts; }
  if t == 9 { yield(102) also aborts; }
  return;
}

/* A chain of helper activations with no handlers of their own; the
   dispatcher must walk through all of them. */
deep(bits32 t, bits32 d) {
  if d == 0 {
    make_move(t) also aborts;
  } else {
    deep(t, d - 1) also aborts;
  }
  return;
}

try_a_move(bits32 t, bits32 depth) {
  bits32 s, r;
  deep(t, depth) also unwinds to k1, k2 also aborts descriptors desc_try;
  r = 1;
  goto finish;
finish:
  moves_tried = moves_tried + 1;
  return (r);
continuation k1(s):
  r = 100 + s;
  goto finish;
continuation k2:
  r = 200;
  goto finish;
}

main(bits32 t, bits32 depth) {
  bits32 r;
  r = try_a_move(t, depth);
  return (r, moves_tried);
}
)";
}

TEST(UnwindingFigure8, NormalPathHasZeroDispatchCost) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {b32(5), b32(0)});
  UnwindingDispatcher D(M);
  MachineStatus St = runWithRuntime(M, std::ref(D));
  ASSERT_EQ(St, MachineStatus::Halted);
  ASSERT_EQ(M.argArea().size(), 2u);
  EXPECT_EQ(M.argArea()[0], b32(1));
  EXPECT_EQ(M.argArea()[1], b32(1)); // moves_tried
  EXPECT_EQ(D.dispatches(), 0u);     // no exception: the dispatcher never ran
  EXPECT_EQ(M.stats().Yields, 0u);
}

TEST(UnwindingFigure8, BadMoveUnwindsToHandlerWithArgument) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {b32(7), b32(0)});
  UnwindingDispatcher D(M);
  ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
  EXPECT_EQ(M.argArea()[0], b32(142)); // 100 + the RAISE argument
  EXPECT_EQ(M.argArea()[1], b32(1));   // finalization still runs
  EXPECT_EQ(D.dispatches(), 1u);
}

TEST(UnwindingFigure8, SecondHandlerWithoutArgument) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {b32(9), b32(0)});
  UnwindingDispatcher D(M);
  ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
  EXPECT_EQ(M.argArea()[0], b32(200));
}

TEST(UnwindingFigure8, WalkLengthGrowsWithStackDepth) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);

  uint64_t Short, Long;
  {
    Machine M(*Prog);
    M.start("main", {b32(7), b32(1)});
    UnwindingDispatcher D(M);
    ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
    EXPECT_EQ(M.argArea()[0], b32(142));
    Short = D.walkStats().ActivationsVisited;
  }
  {
    Machine M(*Prog);
    M.start("main", {b32(7), b32(30)});
    UnwindingDispatcher D(M);
    ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
    EXPECT_EQ(M.argArea()[0], b32(142));
    Long = D.walkStats().ActivationsVisited;
  }
  // Raising deeper costs a longer interpretive walk: that is the unwinding
  // trade-off of Figure 2.
  EXPECT_GE(Long, Short + 29);
}

TEST(UnwindingFigure8, UnhandledExceptionLeavesThreadSuspended) {
  const char *Src = R"(
export main;
f() { yield(777) also aborts; return; }
main() { f() also aborts; return (0); }
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main");
  UnwindingDispatcher D(M);
  MachineStatus St = runWithRuntime(M, std::ref(D));
  // Figure 9 would abort(); we decline the yield and stop.
  EXPECT_EQ(St, MachineStatus::Suspended);
}

//===----------------------------------------------------------------------===//
// Stack cutting (Figure 10)
//===----------------------------------------------------------------------===//

const char *cutSource() {
  return R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[64]; }

/* RAISE in the stack-cutting implementation: pop the topmost handler
   continuation and cut to it — no run-time system involved at all. */
get_move(bits32 t) {
  bits32 kv;
  if t == 7 {
    kv = bits32[exn_top];
    exn_top = exn_top - sizeof(kv);
    cut to kv(101, 42);
  }
  return (t + 1);
}

/* Helpers between the raise point and the handler must tolerate being cut
   over: their pending calls carry also aborts. */
deep(bits32 t, bits32 d) {
  bits32 r;
  if d == 0 {
    r = get_move(t) also aborts;
    return (r);
  }
  r = deep(t, d - 1) also aborts;
  return (r);
}

try_cut(bits32 t, bits32 depth) {
  bits32 exn_tag, arg, kv, r;
  /* Enter the handler scope: push k on the dynamic exception stack. */
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = k;
  r = deep(t, depth) also cuts to k;
  /* Leave the handler scope. */
  exn_top = exn_top - sizeof(kv);
  return (r);
continuation k(exn_tag, arg):
  return (1000 + exn_tag + arg);
}

main(bits32 t, bits32 depth) {
  bits32 r;
  exn_top = exn_stack;
  r = try_cut(t, depth);
  return (r);
}
)";
}

TEST(CuttingFigure10, NormalPathPaysScopeEntryOnly) {
  auto Prog = compile({cutSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "main", {b32(5), b32(0)});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], b32(6)); // get_move returns t + 1
  EXPECT_EQ(M.stats().Cuts, 0u);
  // The scope entry/leave bookkeeping is real: one store (push k) plus the
  // pointer arithmetic; that is the cost cutting pays even when nothing is
  // raised.
  EXPECT_GE(M.stats().Stores, 1u);
}

TEST(CuttingFigure10, RaiseCutsInConstantTime) {
  auto Prog = compile({cutSource()});
  ASSERT_TRUE(Prog);

  // Dispatch cost must be independent of the stack depth being cut away
  // (measured in machine transitions from the raise to the handler).
  uint64_t CutsOverShallow, CutsOverDeep;
  {
    Machine M(*Prog);
    std::vector<Value> R = runToHalt(M, "main", {b32(7), b32(1)});
    EXPECT_EQ(R[0], b32(1000 + 101 + 42));
    EXPECT_EQ(M.stats().Cuts, 1u);
    CutsOverShallow = M.stats().FramesCutOver;
  }
  {
    Machine M(*Prog);
    std::vector<Value> R = runToHalt(M, "main", {b32(7), b32(30)});
    EXPECT_EQ(R[0], b32(1143));
    EXPECT_EQ(M.stats().Cuts, 1u);
    CutsOverDeep = M.stats().FramesCutOver;
  }
  // The *abstract* machine discards frames one at a time, but a real
  // implementation truncates in constant time; the counter shows exactly
  // what the cut skipped.
  EXPECT_GT(CutsOverDeep, CutsOverShallow);
}

TEST(CuttingFigure10, HandlerStackNestsCorrectly) {
  const char *Src = R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[64]; }

raise_now(bits32 tag) {
  bits32 kv;
  kv = bits32[exn_top];
  exn_top = exn_top - sizeof(kv);
  cut to kv(tag, 0);
}

inner(bits32 raise_tag) {
  bits32 t, a, kv, r;
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = ki;
  if raise_tag > 0 {
    r = 0;
    raise_now(raise_tag) also cuts to ki also aborts;
  }
  exn_top = exn_top - sizeof(kv);
  return (7);
continuation ki(t, a):
  return (10 + t);
}

outer(bits32 raise_tag) {
  bits32 t, a, kv, r;
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = ko;
  r = inner(raise_tag) also cuts to ko also aborts;
  exn_top = exn_top - sizeof(kv);
  return (r);
continuation ko(t, a):
  return (20 + t);
}

main(bits32 raise_tag) {
  bits32 r;
  exn_top = exn_stack;
  r = outer(raise_tag);
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  {
    // No raise: both scopes entered and left.
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(0)})[0], b32(7));
  }
  {
    // Raise inside inner's scope: inner's handler (topmost) wins.
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(3)})[0], b32(13));
  }
}

//===----------------------------------------------------------------------===//
// Native-code stack unwinding: return <i/n> (Section 4.2, Figures 3/4)
//===----------------------------------------------------------------------===//

const char *altReturnSource() {
  return R"(
export caller;

f(bits32 x) {
  if x == 1 { return <0/2> (7); }
  if x == 2 { return <1/2> (8, 9); }
  return <2/2> (x);
}

caller(bits32 x) {
  bits32 r, a, b;
  r = f(x) also returns to k0, k1;
  return (1, r);
continuation k0(a):
  return (2, a);
continuation k1(a, b):
  return (3, a + b);
}
)";
}

struct AltReturnCase {
  uint64_t X, Which, Payload;
};

class AltReturnTest : public ::testing::TestWithParam<AltReturnCase> {};

TEST_P(AltReturnTest, ReturnsToTheRightContinuation) {
  auto Prog = compile({altReturnSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  const AltReturnCase &C = GetParam();
  std::vector<Value> R = runToHalt(M, "caller", {b32(C.X)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], b32(C.Which));
  EXPECT_EQ(R[1], b32(C.Payload));
}

INSTANTIATE_TEST_SUITE_P(
    Section42, AltReturnTest,
    ::testing::Values(AltReturnCase{1, 2, 7},   // return <0/2> -> k0
                      AltReturnCase{2, 3, 17},  // return <1/2> -> k1, 8+9
                      AltReturnCase{5, 1, 5}),  // return <2/2> -> normal
    [](const ::testing::TestParamInfo<AltReturnCase> &I) {
      return "x" + std::to_string(I.param.X);
    });

//===----------------------------------------------------------------------===//
// The slow-but-solid primitives (Section 4.3)
//===----------------------------------------------------------------------===//

TEST(DivSection43, CheckedDivideYieldsOnZeroDivisor) {
  const char *Src = R"(
export main;

data desc_div {
  bits32 1;
  bits32 53744; bits32 0; bits32 0;   /* DivZeroYieldTag -> continuation 0 */
}

safe_div(bits32 a, bits32 b) {
  bits32 q;
  q = %%divu(a, b) also unwinds to dz also aborts descriptors desc_div;
  return (q);
continuation dz:
  return (4294967295);   /* -1: the front end's "division failed" value */
}

main(bits32 a, bits32 b) {
  bits32 r;
  r = safe_div(a, b);
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  {
    Machine M(*Prog);
    M.start("main", {b32(42), b32(6)});
    UnwindingDispatcher D(M);
    ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
    EXPECT_EQ(M.argArea()[0], b32(7));
    EXPECT_EQ(D.dispatches(), 0u);
  }
  {
    Machine M(*Prog);
    M.start("main", {b32(42), b32(0)});
    UnwindingDispatcher D(M);
    ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
    EXPECT_EQ(M.argArea()[0], b32(0xFFFFFFFF));
    EXPECT_EQ(D.dispatches(), 1u);
  }
}

TEST(DivSection43, FastDivideGoesWrongOnZeroDivisor) {
  const char *Src = R"(
export main;
main(bits32 a, bits32 b) {
  return (%divu(a, b));
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {b32(42), b32(0)});
  EXPECT_EQ(M.run(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("unspecified"), std::string::npos);
}

} // namespace
