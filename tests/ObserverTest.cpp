//===- tests/ObserverTest.cpp - MachineObserver event stream --------------===//
//
// Part of cmmex (see DESIGN.md). Guards the observability contract of
// sem/Observer.h: event counts agree exactly with Machine::stats(), events
// arrive in a sane order, a no-op observer leaves the machine's behaviour
// and Stats bit-identical to an unobserved run, and MultiObserver fans the
// stream out unchanged.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "rts/Dispatchers.h"
#include "sem/Observer.h"

using namespace cmm;
using namespace cmm::test;

namespace {

const char *recursiveSource() {
  return R"(
export main;
sum(bits32 n) {
  bits32 s;
  if n == 0 { return (0); }
  s = sum(n - 1);
  return (s + n);
}
iter(bits32 n, bits32 acc) {
  if n == 0 { return (acc); }
  jump iter(n - 1, acc + n);
}
main(bits32 n) {
  bits32 a, b;
  a = sum(n);
  b = iter(n, 0);
  return (a + b);
}
)";
}

// The Figures 8/9 exception program from ExceptionsTest.cpp: a yield at
// depth, a handler two procedures up, serviced by the unwinding dispatcher.
const char *unwindSource() {
  return R"(
export main;
global bits32 moves_tried;
data desc_try {
  bits32 2;
  bits32 101; bits32 0; bits32 1;
  bits32 102; bits32 1; bits32 0;
}
make_move(bits32 t) {
  if t == 7 { yield(101, 42) also aborts; }
  if t == 9 { yield(102) also aborts; }
  return;
}
deep(bits32 t, bits32 d) {
  if d == 0 {
    make_move(t) also aborts;
  } else {
    deep(t, d - 1) also aborts;
  }
  return;
}
try_a_move(bits32 t, bits32 depth) {
  bits32 s, r;
  deep(t, depth) also unwinds to k1, k2 also aborts descriptors desc_try;
  r = 1;
  goto finish;
finish:
  moves_tried = moves_tried + 1;
  return (r);
continuation k1(s):
  r = 100 + s;
  goto finish;
continuation k2:
  r = 200;
  goto finish;
}
main(bits32 t, bits32 depth) {
  bits32 r;
  r = try_a_move(t, depth);
  return (r, moves_tried);
}
)";
}

/// Counts every callback and records a coarse event ordering.
struct CountingObserver final : MachineObserver {
  uint64_t Starts = 0, Halts = 0, Steps = 0, Calls = 0, Jumps = 0,
           Returns = 0, CutFrames = 0, Cuts = 0, Yields = 0, UnwindPops = 0,
           ResumedPops = 0, Resumes = 0, Wrongs = 0, DispatchBegins = 0,
           DispatchEnds = 0;
  std::vector<char> Order; ///< 's'tart 'c'all 'j'ump 'r'eturn 'y'ield
                           ///< 'u'nwind-pop 'R'esume 'h'alt 'D'/'d' dispatch

  void onStart(const Executor &, const IrProc *) override {
    ++Starts;
    Order.push_back('s');
  }
  void onHalt(const Executor &) override {
    ++Halts;
    Order.push_back('h');
  }
  void onStep(const Executor &, const Node *N) override {
    ++Steps;
    // Yield suspensions are not steps; the machine must not report them.
    EXPECT_NE(N->kind(), Node::Kind::Yield);
  }
  void onCall(const Executor &, const CallNode *Site, const IrProc *Caller,
              const IrProc *Callee) override {
    ++Calls;
    Order.push_back('c');
    EXPECT_NE(Site, nullptr);
    EXPECT_NE(Caller, nullptr);
    EXPECT_NE(Callee, nullptr);
  }
  void onJump(const Executor &, const JumpNode *, const IrProc *,
              const IrProc *) override {
    ++Jumps;
    Order.push_back('j');
  }
  void onReturn(const Executor &, const CallNode *, const IrProc *,
                const IrProc *, unsigned) override {
    ++Returns;
    Order.push_back('r');
  }
  void onCutFrameDiscarded(const Executor &, const CallNode *,
                           const IrProc *) override {
    ++CutFrames;
  }
  void onCut(const Executor &, const CutToNode *, const IrProc *, uint64_t,
             bool) override {
    ++Cuts;
  }
  void onYield(const Executor &M) override {
    ++Yields;
    Order.push_back('y');
    EXPECT_EQ(M.status(), MachineStatus::Suspended);
  }
  void onUnwindPop(const Executor &, const CallNode *Site, const IrProc *Owner,
                   bool Resumed) override {
    ++UnwindPops;
    if (Resumed)
      ++ResumedPops;
    Order.push_back('u');
    EXPECT_NE(Site, nullptr);
    EXPECT_NE(Owner, nullptr);
  }
  void onResume(const Executor &M, ResumeChoice::Kind, unsigned) override {
    ++Resumes;
    Order.push_back('R');
    EXPECT_EQ(M.status(), MachineStatus::Running);
  }
  void onWrong(const Executor &, const std::string &, SourceLoc) override {
    ++Wrongs;
  }
  void onDispatchBegin(const Executor &, std::string_view,
                       uint64_t) override {
    ++DispatchBegins;
    Order.push_back('D');
  }
  void onDispatchEnd(const Executor &, std::string_view, bool,
                     uint64_t) override {
    ++DispatchEnds;
    Order.push_back('d');
  }
};

TEST(Observer, CountsAgreeWithStats) {
  auto Prog = compile({recursiveSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  CountingObserver C;
  M.setObserver(&C);
  M.start("main", {b32(6)});
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  ASSERT_EQ(M.argArea().size(), 1u);
  EXPECT_EQ(M.argArea()[0], b32(42)); // 21 + 21

  const Stats &S = M.stats();
  EXPECT_EQ(C.Steps, S.Steps);
  EXPECT_EQ(C.Calls, S.Calls);
  EXPECT_EQ(C.Jumps, S.Jumps);
  EXPECT_EQ(C.Returns, S.Returns);
  EXPECT_EQ(C.Yields, S.Yields);
  EXPECT_EQ(C.UnwindPops, S.UnwindPops);
  EXPECT_EQ(C.Cuts, S.Cuts);
  EXPECT_EQ(C.CutFrames, S.FramesCutOver);
  EXPECT_EQ(C.Starts, 1u);
  EXPECT_EQ(C.Halts, 1u);
  EXPECT_EQ(C.Wrongs, 0u);
}

TEST(Observer, EventOrdering) {
  auto Prog = compile({recursiveSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  CountingObserver C;
  M.setObserver(&C);
  M.start("main", {b32(3)});
  ASSERT_EQ(M.run(), MachineStatus::Halted);

  ASSERT_FALSE(C.Order.empty());
  EXPECT_EQ(C.Order.front(), 's');
  EXPECT_EQ(C.Order.back(), 'h');
  // Calls and returns balance (the entry activation's own Exit fires
  // onHalt, not onReturn), and the running depth never goes negative.
  int64_t Depth = 0;
  for (char E : C.Order) {
    if (E == 'c')
      ++Depth;
    else if (E == 'r') {
      --Depth;
      EXPECT_GE(Depth, 0);
    }
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_EQ(C.Calls, C.Returns);
}

TEST(Observer, NullObserverLeavesStatsIdentical) {
  auto Prog = compile({recursiveSource()});
  ASSERT_TRUE(Prog);

  Machine Plain(*Prog);
  Plain.start("main", {b32(8)});
  ASSERT_EQ(Plain.run(), MachineStatus::Halted);

  Machine Observed(*Prog);
  MachineObserver Nop; // all callbacks empty-bodied
  Observed.setObserver(&Nop);
  Observed.start("main", {b32(8)});
  ASSERT_EQ(Observed.run(), MachineStatus::Halted);

  EXPECT_EQ(Plain.argArea().size(), Observed.argArea().size());
  for (size_t I = 0; I < Plain.argArea().size(); ++I)
    EXPECT_EQ(Plain.argArea()[I], Observed.argArea()[I]);

  const Stats &A = Plain.stats();
  const Stats &B = Observed.stats();
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Calls, B.Calls);
  EXPECT_EQ(A.Jumps, B.Jumps);
  EXPECT_EQ(A.Returns, B.Returns);
  EXPECT_EQ(A.Cuts, B.Cuts);
  EXPECT_EQ(A.FramesCutOver, B.FramesCutOver);
  EXPECT_EQ(A.Yields, B.Yields);
  EXPECT_EQ(A.UnwindPops, B.UnwindPops);
  EXPECT_EQ(A.ContsBound, B.ContsBound);
  EXPECT_EQ(A.Loads, B.Loads);
  EXPECT_EQ(A.Stores, B.Stores);
  EXPECT_EQ(A.CalleeSaveMoves, B.CalleeSaveMoves);
  EXPECT_EQ(A.MaxStackDepth, B.MaxStackDepth);
}

TEST(Observer, UnwindDispatchEvents) {
  auto Prog = compile({unwindSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  CountingObserver C;
  M.setObserver(&C);
  M.start("main", {b32(7), b32(3)});
  UnwindingDispatcher D(M);
  ASSERT_EQ(runWithRuntime(M, std::ref(D)), MachineStatus::Halted);
  EXPECT_EQ(M.argArea()[0], b32(142));

  const Stats &S = M.stats();
  EXPECT_EQ(C.Yields, 1u);
  EXPECT_EQ(C.Yields, S.Yields);
  EXPECT_EQ(C.UnwindPops, S.UnwindPops);
  EXPECT_GT(C.UnwindPops, 0u);
  // Exactly one pop resumed into its frame (try_a_move's k1); the others
  // discarded deep/make_move activations.
  EXPECT_EQ(C.ResumedPops, 1u);
  EXPECT_EQ(C.DispatchBegins, 1u);
  EXPECT_EQ(C.DispatchEnds, 1u);
  EXPECT_EQ(C.Resumes, 1u);

  // The dispatch window sits between the yield and the resume:
  // ... y D u u ... u R ... d appears after the resume returns Handled.
  std::string Order(C.Order.begin(), C.Order.end());
  size_t Y = Order.find('y');
  size_t Db = Order.find('D');
  size_t R = Order.find('R');
  size_t De = Order.find('d');
  ASSERT_NE(Y, std::string::npos);
  ASSERT_NE(Db, std::string::npos);
  ASSERT_NE(R, std::string::npos);
  ASSERT_NE(De, std::string::npos);
  EXPECT_LT(Y, Db);
  EXPECT_LT(Db, R);
  EXPECT_LT(R, De);
  for (size_t I = 0; I < Order.size(); ++I)
    if (Order[I] == 'u') {
      EXPECT_GT(I, Db);
      EXPECT_LT(I, R);
    }
}

TEST(Observer, MultiObserverForwardsToAll) {
  auto Prog = compile({recursiveSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  CountingObserver A, B;
  MultiObserver Multi;
  Multi.add(&A);
  Multi.add(&B);
  Multi.add(nullptr); // ignored
  EXPECT_EQ(Multi.size(), 2u);
  M.setObserver(&Multi);
  M.start("main", {b32(4)});
  ASSERT_EQ(M.run(), MachineStatus::Halted);

  EXPECT_GT(A.Steps, 0u);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Calls, B.Calls);
  EXPECT_EQ(A.Returns, B.Returns);
  EXPECT_EQ(A.Order, B.Order);
}

TEST(Observer, WrongFiresOnBadStart) {
  auto Prog = compile({recursiveSource()});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  CountingObserver C;
  M.setObserver(&C);
  M.start("no_such_proc", {});
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_EQ(C.Wrongs, 1u);
  EXPECT_EQ(C.Starts, 0u);
}

} // namespace
