//===- tests/VmConformanceTest.cpp - Walker vs bytecode VM vs threaded ----===//
//
// Part of cmmex (see DESIGN.md). The bytecode VM (src/vm) and the threaded
// tier (vm/Threaded.h) claim the exact observable semantics of the
// reference tree walker (src/sem): same status, same answers, same
// goes-wrong reasons byte for byte, same 13 Stats counters, same suspension
// states. This suite pins that claim on a fixed corpus, running every check
// across the full backend matrix in lockstep; cmmdiff re-checks it on every
// random seed.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/RandomProgram.h"
#include "engine/Engine.h"
#include "rts/RuntimeInterface.h"
#include "vm/Threaded.h"
#include "vm/Vm.h"

using namespace cmm;
using namespace cmm::test;

namespace {

void expectStatsEqual(const Stats &W, const Stats &V) {
  EXPECT_EQ(W.Steps, V.Steps);
  EXPECT_EQ(W.Calls, V.Calls);
  EXPECT_EQ(W.Jumps, V.Jumps);
  EXPECT_EQ(W.Returns, V.Returns);
  EXPECT_EQ(W.Cuts, V.Cuts);
  EXPECT_EQ(W.FramesCutOver, V.FramesCutOver);
  EXPECT_EQ(W.Yields, V.Yields);
  EXPECT_EQ(W.UnwindPops, V.UnwindPops);
  EXPECT_EQ(W.ContsBound, V.ContsBound);
  EXPECT_EQ(W.Loads, V.Loads);
  EXPECT_EQ(W.Stores, V.Stores);
  EXPECT_EQ(W.CalleeSaveMoves, V.CalleeSaveMoves);
  EXPECT_EQ(W.MaxStackDepth, V.MaxStackDepth);
}

/// Runs \p Entry(\p Args) on every backend — constructed through the
/// engine facade, like every other consumer — and demands that the VM and
/// threaded tiers match the walker's outcome exactly: status, argument
/// area, wrong reason and location, and every counter.
void expectBackendsAgree(const IrProgram &Prog, std::string_view Entry,
                         const std::vector<Value> &Args) {
  auto WP = engine::makeExecutor(engine::Backend::Walk, Prog);
  Executor &W = *WP;
  W.start(Entry, Args);
  MachineStatus SW = W.run(10'000'000);
  for (engine::Backend B : {engine::Backend::Vm, engine::Backend::Threaded}) {
    SCOPED_TRACE(std::string("backend ") +
                 std::string(engine::backendName(B)));
    auto VP = engine::makeExecutor(B, Prog);
    Executor &V = *VP;
    V.start(Entry, Args);
    MachineStatus SV = V.run(10'000'000);
    EXPECT_EQ(SW, SV);
    EXPECT_TRUE(W.argArea() == V.argArea());
    EXPECT_EQ(W.wrongReason(), V.wrongReason());
    EXPECT_EQ(W.wrongLoc().str(), V.wrongLoc().str());
    expectStatsEqual(W.stats(), V.stats());
  }
}

//===----------------------------------------------------------------------===//
// Fixed corpus: every control-transfer and memory shape
//===----------------------------------------------------------------------===//

TEST(VmConformance, RecursionWithMultipleResults) {
  const char *Src = R"(
export main;
sp1(bits32 n) {
  bits32 s, p;
  if n == 1 { return (1, 1); }
  s, p = sp1(n - 1);
  return (s + n, p * n);
}
main(bits32 n) {
  bits32 s, p;
  s, p = sp1(n);
  return (s, p);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t N : {1, 2, 10, 40})
    expectBackendsAgree(*Prog, "main", {b32(N)});
}

TEST(VmConformance, TailCallsAndLoops) {
  const char *Src = R"(
export main;
helper(bits32 n, bits32 acc) {
  if n == 0 { return (acc); }
  jump helper(n - 1, acc + n);
}
main(bits32 n) {
  bits32 r, i, s;
  r = helper(n, 0);
  i = 0; s = 0;
loop:
  if i == n { return (r + s); }
  s = s + i;
  i = i + 1;
  goto loop;
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t N : {0, 1, 100})
    expectBackendsAgree(*Prog, "main", {b32(N)});
}

TEST(VmConformance, MemoryTrafficAndData) {
  const char *Src = R"(
export main;
data buf { bits32[16]; }
main(bits32 n) {
  bits32 i, s;
  i = 0;
loop:
  if i == 16 { goto sum; }
  bits32[buf + i * 4] = i * n;
  i = i + 1;
  goto loop;
sum:
  i = 0; s = 0;
sloop:
  if i == 16 { return (s); }
  s = s + bits32[buf + i * 4];
  i = i + 1;
  goto sloop;
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t N : {1, 3})
    expectBackendsAgree(*Prog, "main", {b32(N)});
}

TEST(VmConformance, StackCutting) {
  const char *Src = R"(
export main;
worker(bits32 kv, bits32 n) {
  if n == 0 { cut to kv(77); }
  jump worker(kv, n - 1);
}
main() {
  bits32 r, v;
  r = worker(k, 3) also cuts to k also aborts;
  return (0);
continuation k(v):
  return (v + 1);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  expectBackendsAgree(*Prog, "main", {});
}

TEST(VmConformance, CheckedDivisionAndPrims) {
  const char *Src = R"(
export main;
main(bits32 a, bits32 b) {
  bits32 q, r;
  q = %%divu(a, b) also aborts;
  r = %lo32(%zx64(q) + %sx64(a));
  return (r ^ %leu(a, b));
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  expectBackendsAgree(*Prog, "main", {b32(84), b32(2)});
  expectBackendsAgree(*Prog, "main", {b32(84), b32(0)}); // goes wrong
}

//===----------------------------------------------------------------------===//
// Goes-wrong parity: reasons must be byte-identical
//===----------------------------------------------------------------------===//

TEST(VmConformance, WrongReasonsMatchExactly) {
  const char *Unbound = R"(
export main;
main(bits32 n) {
  bits32 x, y;
  if n == 0 { x = 1; }
  y = x + 1;
  return (y);
}
)";
  const char *DeadCont = R"(
export main;
make_k() {
  bits32 t;
  return (k);
continuation k(t):
  return (99);
}
use_k(bits32 kv) {
  cut to kv(1);
}
main() {
  bits32 kv, r;
  kv = make_k();
  r = use_k(kv) also aborts;
  return (r);
}
)";
  for (const char *Src : {Unbound, DeadCont}) {
    auto Prog = compile({Src});
    ASSERT_TRUE(Prog);
    expectBackendsAgree(*Prog, "main", {b32(7)});
  }
}

TEST(VmConformance, UnknownStartProcedureMatches) {
  auto Prog = compile({"export main; main() { return (0); }"});
  ASSERT_TRUE(Prog);
  auto WP = engine::makeExecutor(engine::Backend::Walk, *Prog);
  Executor &W = *WP;
  W.start("nonexistent");
  EXPECT_EQ(W.status(), MachineStatus::Wrong);
  for (engine::Backend B : {engine::Backend::Vm, engine::Backend::Threaded}) {
    auto VP = engine::makeExecutor(B, *Prog);
    Executor &V = *VP;
    V.start("nonexistent");
    EXPECT_EQ(V.status(), MachineStatus::Wrong);
    EXPECT_EQ(W.wrongReason(), V.wrongReason());
  }
}

//===----------------------------------------------------------------------===//
// Fused-operand wrongLoc parity: the unbound slot is read by the second
// half of a superinstruction, and the diagnosis must still point at the
// variable reference (RvSlotLocs), byte-identically across all backends.
//===----------------------------------------------------------------------===//

TEST(VmConformance, FusedOperandWrongLocMatches) {
  // `y = x + 1; z = y + x2;` compiles to adjacent Binary ops (a bin+bin
  // fusion site); x2 is unbound on the n != 0 path, so the goes-wrong fires
  // inside the fused pair's second component.
  const char *Src = R"(
export main;
main(bits32 n) {
  bits32 x, x2, y, z;
  x = 5;
  if n == 0 { x2 = 1; }
  y = x + 1;
  z = y + x2;
  return (z);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  // The site must actually fuse, or this test is checking nothing.
  ThreadedMachine T(*Prog);
  const FusionStats &F = T.threadedProgram().Fusion;
  ASSERT_GT(F.SitesByOp[size_t(TOp::BinaryBinary)], 0u);
  expectBackendsAgree(*Prog, "main", {b32(0)}); // halts
  expectBackendsAgree(*Prog, "main", {b32(3)}); // wrong, inside the pair
}

//===----------------------------------------------------------------------===//
// Suspension parity: the run-time system sees the same thread
//===----------------------------------------------------------------------===//

const char *towers() {
  return R"(
export main;
data d_main { bits32 1; bits32 7; bits32 0; bits32 1; }
data d_mid  { bits32 1; bits32 8; bits32 0; bits32 0; }

leaf(bits32 x) {
  yield(7, x) also aborts;
  return (0);
}
mid(bits32 x) {
  bits32 r;
  r = leaf(x) also unwinds to km also aborts descriptors d_mid;
  return (r);
continuation km:
  return (222);
}
main(bits32 x) {
  bits32 r, a;
  r = mid(x) also unwinds to k0, k1 also aborts descriptors d_main;
  return (r);
continuation k0(a):
  return (1000 + a);
continuation k1:
  return (2000);
}
)";
}

TEST(VmConformance, SuspendsIdenticallyAtYield) {
  auto Prog = compile({towers()});
  ASSERT_TRUE(Prog);
  auto WP = engine::makeExecutor(engine::Backend::Walk, *Prog);
  auto VP = engine::makeExecutor(engine::Backend::Vm, *Prog);
  auto TP = engine::makeExecutor(engine::Backend::Threaded, *Prog);
  Executor &W = *WP;
  for (Executor *E : {&*WP, &*VP, &*TP}) {
    E->start("main", {b32(5)});
    ASSERT_EQ(E->run(), MachineStatus::Suspended);
  }
  for (Executor *V : {&*VP, &*TP}) {
    EXPECT_TRUE(W.argArea() == V->argArea());
    ASSERT_EQ(W.stackDepth(), V->stackDepth());
    for (size_t I = 0; I < W.stackDepth(); ++I) {
      EXPECT_EQ(W.frameProc(I), V->frameProc(I));
      EXPECT_EQ(W.frameCallSite(I), V->frameCallSite(I));
    }
    expectStatsEqual(W.stats(), V->stats());
  }

  // Drive all three through the same Table 1 resumption; the suspended
  // substrate (rtUnwindTop, rtResume) must behave identically.
  for (Executor *E : {&*WP, &*VP, &*TP}) {
    CmmRuntime Rt(*E);
    Activation Act;
    ASSERT_TRUE(Rt.firstActivation(Act));
    ASSERT_TRUE(Rt.nextActivation(Act));
    ASSERT_TRUE(Rt.nextActivation(Act)); // main
    ASSERT_TRUE(Rt.setActivation(Act));
    ASSERT_TRUE(Rt.setUnwindCont(0));
    *Rt.findContParam(0) = b32(5);
    ASSERT_TRUE(Rt.resume());
    ASSERT_EQ(E->run(), MachineStatus::Halted);
    EXPECT_EQ(E->argArea()[0], b32(1005));
  }
  expectStatsEqual(W.stats(), VP->stats());
  expectStatsEqual(W.stats(), TP->stats());
}

//===----------------------------------------------------------------------===//
// step() parity: one abstract transition per step on both backends
//===----------------------------------------------------------------------===//

TEST(VmConformance, SingleSteppingTracksTheWalker) {
  const char *Src = R"(
export main;
f(bits32 x) { return (x * 2); }
main(bits32 n) {
  bits32 a, b;
  a = f(n);
  b = f(a);
  return (a + b);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  auto WP = engine::makeExecutor(engine::Backend::Walk, *Prog);
  auto VP = engine::makeExecutor(engine::Backend::Vm, *Prog);
  auto TP = engine::makeExecutor(engine::Backend::Threaded, *Prog);
  Executor &W = *WP, &V = *VP, &T = *TP;
  W.start("main", {b32(3)});
  V.start("main", {b32(3)});
  T.start("main", {b32(3)});
  for (unsigned I = 0; I < 10'000; ++I) {
    bool MoreW = W.step();
    bool MoreV = V.step();
    bool MoreT = T.step();
    ASSERT_EQ(MoreW, MoreV) << "after " << I << " steps";
    ASSERT_EQ(MoreW, MoreT) << "after " << I << " steps";
    ASSERT_EQ(W.status(), V.status()) << "after " << I << " steps";
    ASSERT_EQ(W.status(), T.status()) << "after " << I << " steps";
    ASSERT_EQ(W.stats().Steps, V.stats().Steps) << "after " << I << " steps";
    ASSERT_EQ(W.stats().Steps, T.stats().Steps) << "after " << I << " steps";
    if (!MoreW)
      break;
  }
  ASSERT_EQ(W.status(), MachineStatus::Halted);
  EXPECT_TRUE(W.argArea() == V.argArea());
  EXPECT_TRUE(W.argArea() == T.argArea());
  EXPECT_EQ(W.argArea()[0], b32(18));
}

//===----------------------------------------------------------------------===//
// Random corpus: the same property, over generated programs
//===----------------------------------------------------------------------===//

class VmRandomConformance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmRandomConformance, AgreesWithWalker) {
  std::string Src = generateRandomProgram(GetParam());
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  for (uint64_t In : {0, 1, 7, 12})
    expectBackendsAgree(*Prog, "main", {b32(In)});
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmRandomConformance,
                         ::testing::Range<uint64_t>(300, 312));

//===----------------------------------------------------------------------===//
// The compiled form itself
//===----------------------------------------------------------------------===//

TEST(VmConformance, CompiledProgramMirrorsProcOrder) {
  auto Prog = compile({towers()});
  ASSERT_TRUE(Prog);
  VmMachine V(*Prog);
  const CompiledProgram &CP = V.compiled();
  ASSERT_EQ(CP.Procs.size(), Prog->Procs.size());
  for (size_t I = 0; I < CP.Procs.size(); ++I) {
    EXPECT_EQ(CP.Procs[I].Proc, Prog->Procs[I].get());
    EXPECT_EQ(&CP.byProc(Prog->Procs[I].get()), &CP.Procs[I]);
  }
}

TEST(VmConformance, DisassemblerRendersFusedForms) {
  // A comparison driving a branch becomes brc; a constant operand renders
  // as k<n>; a CopyOut expression tail carries the [stage] marker.
  const char *Src = R"(
export main;
main(bits32 n) {
  if n < 10 { return (n + 1); }
  return (0);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  CompiledProgram CP = compileToBytecode(*Prog);
  std::string Listing;
  for (const CompiledProc &C : CP.Procs)
    Listing += disassemble(C, *Prog->Names);
  EXPECT_NE(Listing.find("brc"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("k"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("[stage]"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("entry"), std::string::npos) << Listing;
}

TEST(VmConformance, ThreadedStreamStaysPcParallel) {
  // The fused key stream must be exactly as long as the bytecode (branch
  // targets and RvSlotLocs keep meaning), and the threaded listing renders
  // superinstruction mnemonics at fused sites.
  auto Prog = compile({towers()});
  ASSERT_TRUE(Prog);
  ThreadedMachine T(*Prog);
  const ThreadedProgram &TP = T.threadedProgram();
  ASSERT_EQ(TP.Procs.size(), TP.Bytecode->Procs.size());
  for (size_t I = 0; I < TP.Procs.size(); ++I)
    EXPECT_EQ(TP.Procs[I].Keys.size(), TP.Bytecode->Procs[I].Code.size());
  EXPECT_GT(TP.Fusion.FusedSites, 0u);
  std::string Listing;
  for (uint32_t PI = 0; PI < TP.Procs.size(); ++PI)
    Listing += disassembleThreaded(TP, PI, *Prog->Names);
  EXPECT_NE(Listing.find("entry+copyin"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("[fused with"), std::string::npos) << Listing;
}

} // namespace
