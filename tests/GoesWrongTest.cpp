//===- tests/GoesWrongTest.cpp - Section 5.2's stuck states ---------------===//
//
// Part of cmmex (see DESIGN.md). "The machine makes transitions until it
// reaches a state in which no transitions are possible. If, in that state,
// the control is Exit<0/0> and the stack is empty, we say the program has
// terminated normally; otherwise it has gone wrong." Every way a program
// can go wrong is pinned down here, because the formal semantics exists
// precisely so these cases are unambiguous.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "engine/Engine.h"
#include "rts/RuntimeInterface.h"
#include "vm/Threaded.h"
#include "vm/Vm.h"

using namespace cmm;
using namespace cmm::test;

namespace {

/// Runs main(args) on every backend and expects Wrong with \p ReasonFragment
/// in the reason — and the reasons byte-identical across backends (the
/// goes-wrong rules are part of the observable semantics the VM and the
/// threaded tier preserve).
void expectWrong(const char *Src, std::vector<Value> Args,
                 const char *ReasonFragment) {
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  auto M = engine::makeExecutor(engine::Backend::Walk, *Prog);
  M->start("main", Args);
  EXPECT_EQ(M->run(), MachineStatus::Wrong);
  EXPECT_NE(M->wrongReason().find(ReasonFragment), std::string::npos)
      << "actual reason: " << M->wrongReason();
  for (engine::Backend B : {engine::Backend::Vm, engine::Backend::Threaded}) {
    SCOPED_TRACE(std::string("backend ") +
                 std::string(engine::backendName(B)));
    auto V = engine::makeExecutor(B, *Prog);
    V->start("main", Args);
    EXPECT_EQ(V->run(), MachineStatus::Wrong);
    EXPECT_EQ(V->wrongReason(), M->wrongReason());
    EXPECT_EQ(V->wrongLoc().str(), M->wrongLoc().str());
  }
}

//===----------------------------------------------------------------------===//
// Dead continuations: the uid check
//===----------------------------------------------------------------------===//

TEST(GoesWrong, CutToDeadContinuation) {
  // make_k returns its continuation value; by then the activation is dead.
  // "Once an activation dies, its continuations die too. Invoking a dead
  // continuation is an unchecked run-time error" (Section 4.1) — which the
  // abstract machine's uid check turns into a definite wrong state.
  const char *Src = R"(
export main;
make_k() {
  bits32 t;
  return (k);
continuation k(t):
  return (99);
}
use_k(bits32 kv) {
  cut to kv(1);
}
main() {
  bits32 kv, r;
  kv = make_k();
  r = use_k(kv) also aborts;
  return (r);
}
)";
  expectWrong(Src, {}, "dead continuation");
}

TEST(GoesWrong, DeadContinuationOfRecursiveSibling) {
  // A continuation captured in one recursive activation is dead in a
  // *different* activation of the same procedure: same node, wrong uid.
  const char *Src = R"(
export main;
global bits32 saved;

capture(bits32 depth) {
  bits32 t, r;
  if depth == 0 {
    saved = k;       /* capture in this activation... */
    return (0);
  }
  r = capture(depth - 1) also aborts;
  /* ...then try to cut to it from a sibling activation whose own k is a
     different continuation value. */
  cut to saved(7) also cuts to k;
continuation k(t):
  return (t);
}

main() {
  bits32 r;
  r = capture(1) also aborts;
  return (r);
}
)";
  expectWrong(Src, {}, "dead continuation");
}

//===----------------------------------------------------------------------===//
// Annotation violations
//===----------------------------------------------------------------------===//

TEST(GoesWrong, CutPastCallSiteWithoutAlsoAborts) {
  const char *Src = R"(
export main;
raiser() {
  bits32 kv;
  kv = bits32[4096];
  cut to kv(1, 2);
}
middle() {
  raiser();   /* no also aborts: the cut may not pass this frame */
  return;
}
main() {
  bits32 t, a;
  bits32[4096] = k;
  middle() also cuts to k also aborts;
  return (0);
continuation k(t, a):
  return (t + a);
}
)";
  expectWrong(Src, {}, "also aborts");
}

TEST(GoesWrong, CutToContinuationNotInCallSiteAnnotation) {
  const char *Src = R"(
export main;
raiser() {
  bits32 kv;
  kv = bits32[4096];
  cut to kv(1, 2);
}
main() {
  bits32 t, a;
  bits32[4096] = k;
  raiser() also aborts;   /* k is NOT listed in also cuts to */
  return (0);
continuation k(t, a):
  return (t + a);
}
)";
  expectWrong(Src, {}, "also cuts to");
}

TEST(GoesWrong, SameActivationCutWithoutAnnotation) {
  // "If the cut to could transfer control to a continuation in the same
  // procedure, it must have an also cuts to annotation naming that
  // continuation" (Section 4.4).
  const char *Src = R"(
export main;
main() {
  bits32 t;
  cut to k(5);   /* missing: also cuts to k */
continuation k(t):
  return (t);
}
)";
  expectWrong(Src, {}, "also cuts to");
}

TEST(SameActivationCut, WorksWithAnnotation) {
  const char *Src = R"(
export main;
main() {
  bits32 t;
  cut to k(5) also cuts to k;
continuation k(t):
  return (t + 1);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(6));
  EXPECT_EQ(M.stats().Cuts, 1u);
}

//===----------------------------------------------------------------------===//
// Return arity: Exit j n vs the call site's bundle
//===----------------------------------------------------------------------===//

TEST(GoesWrong, AlternateReturnAtPlainCallSite) {
  const char *Src = R"(
export main;
f() {
  return <0/1> (7);
}
main() {
  bits32 r;
  r = f();   /* no also returns to: the callee's <i/1> does not match */
  return (r);
}
)";
  expectWrong(Src, {}, "alternate return");
}

TEST(GoesWrong, PlainReturnAtAnnotatedCallSite) {
  const char *Src = R"(
export main;
f() {
  return (7);   /* <0/0>, but the call site promises 1 alternate */
}
main() {
  bits32 r, t;
  r = f() also returns to k;
  return (r);
continuation k(t):
  return (t);
}
)";
  expectWrong(Src, {}, "alternate return");
}

TEST(GoesWrong, AbnormalReturnWithEmptyStack) {
  const char *Src = R"(
export main;
main() {
  return <0/1> (1);
}
)";
  expectWrong(Src, {}, "empty stack");
}

//===----------------------------------------------------------------------===//
// Values that are not what control transfer needs
//===----------------------------------------------------------------------===//

TEST(GoesWrong, CallTargetIsNotCode) {
  const char *Src = R"(
export main;
main() {
  bits32 f, r;
  f = 12345;
  r = f();
  return (r);
}
)";
  expectWrong(Src, {}, "not code");
}

TEST(GoesWrong, JumpTargetIsNotCode) {
  const char *Src = R"(
export main;
main() {
  bits32 f;
  f = 12345;
  jump f();
}
)";
  expectWrong(Src, {}, "not code");
}

TEST(GoesWrong, CutToNonContinuationValue) {
  const char *Src = R"(
export main;
main() {
  bits32 kv;
  kv = 12345;
  cut to kv(1);
}
)";
  expectWrong(Src, {}, "not a continuation");
}

TEST(GoesWrong, UnboundVariable) {
  const char *Src = R"(
export main;
main() {
  bits32 x, y;
  y = x + 1;   /* x never assigned */
  return (y);
}
)";
  expectWrong(Src, {}, "unbound");
}

TEST(GoesWrong, TooFewArguments) {
  // "C-- does not check the number or types of arguments passed to a
  // procedure" — statically. Dynamically, a CopyIn finding too few values
  // in A is a stuck state.
  const char *Src = R"(
export main;
f(bits32 a, bits32 b) {
  return (a + b);
}
main() {
  bits32 r;
  r = f(1);
  return (r);
}
)";
  expectWrong(Src, {}, "too few");
}

TEST(ExtraArgumentsAreIgnored, UncheckedButDefined) {
  const char *Src = R"(
export main;
f(bits32 a) {
  return (a);
}
main() {
  bits32 r;
  r = f(1, 2, 3);
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main")[0], b32(1));
}

//===----------------------------------------------------------------------===//
// Unspecified primitives (Section 4.3)
//===----------------------------------------------------------------------===//

struct DivCase {
  const char *Expr;
  uint64_t A, B;
};

class DivWrongTest : public ::testing::TestWithParam<DivCase> {};

TEST_P(DivWrongTest, UnspecifiedFailure) {
  const DivCase &C = GetParam();
  std::string Src = std::string("export main;\nmain(bits32 a, bits32 b) {\n"
                                "  return (") +
                    C.Expr + ");\n}\n";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  Machine M(*Prog);
  M.start("main", {b32(C.A), b32(C.B)});
  EXPECT_EQ(M.run(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("unspecified"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Section43, DivWrongTest,
    ::testing::Values(DivCase{"a / b", 1, 0}, DivCase{"a % b", 1, 0},
                      DivCase{"%divu(a, b)", 1, 0},
                      DivCase{"%divs(a, b)", 1, 0},
                      DivCase{"%modu(a, b)", 1, 0},
                      DivCase{"%mods(a, b)", 1, 0},
                      // INT_MIN / -1 overflows.
                      DivCase{"a / b", 0x80000000, 0xFFFFFFFF},
                      DivCase{"%divs(a, b)", 0x80000000, 0xFFFFFFFF}),
    [](const ::testing::TestParamInfo<DivCase> &I) {
      return "case" + std::to_string(I.index);
    });

//===----------------------------------------------------------------------===//
// Run-time system misbehaviour is also checked — on both backends, since
// the checked Table 1 substrate is part of the semantics the VM preserves.
//===----------------------------------------------------------------------===//

template <typename Exec> class RtMisuseTest : public ::testing::Test {};

struct BackendNames {
  template <typename T> static std::string GetName(int) {
    if constexpr (std::is_same_v<T, Machine>)
      return "walk";
    else if constexpr (std::is_same_v<T, ThreadedMachine>)
      return "threaded";
    else
      return "vm";
  }
};
using AllBackends = ::testing::Types<Machine, VmMachine, ThreadedMachine>;
TYPED_TEST_SUITE(RtMisuseTest, AllBackends, BackendNames);

TYPED_TEST(RtMisuseTest, RuntimeUnwindPastFrameWithoutAborts) {
  const char *Src = R"(
export main;
f() {
  yield(1) also aborts;
  return;
}
g() {
  f();          /* no also aborts */
  return;
}
main() {
  g() also aborts;
  return (0);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Suspended);
  // Frame 0 (f's caller is g... the yield call site inside f has aborts);
  // unwinding one frame is fine, the second (g's call to f... g's call
  // site lacks aborts) must fail.
  EXPECT_TRUE(M.rtUnwindTop(1));
  EXPECT_FALSE(M.rtUnwindTop(1));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("also aborts"), std::string::npos);
}

TYPED_TEST(RtMisuseTest, RuntimeUnwindPastBottomOfStack) {
  // Every call site in this tower carries also aborts, so the unwind walks
  // clean off the bottom — the fifth pop finds no frame at all.
  const char *Src = R"(
export main;
f() {
  yield(1) also aborts;
  return;
}
g() {
  f() also aborts;
  return;
}
main() {
  g() also aborts;
  return (0);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Suspended);
  EXPECT_FALSE(M.rtUnwindTop(5));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("unwound past the bottom of the stack"),
            std::string::npos)
      << "actual reason: " << M.wrongReason();
}

TYPED_TEST(RtMisuseTest, RuntimeResumeWithWrongParameterCount) {
  const char *Src = R"(
export main;
f() {
  yield(1) also aborts;
  return;
}
main() {
  bits32 a, b;
  f() also unwinds to k also aborts;
  return (0);
continuation k(a, b):
  return (a + b);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Suspended);
  ASSERT_TRUE(M.rtUnwindTop(1)); // pop f's frame
  // k expects two parameters; pass one.
  EXPECT_FALSE(M.rtResume(ResumeChoice::unwind(0), {b32(1)}));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("continuation parameters"),
            std::string::npos);
}

TYPED_TEST(RtMisuseTest, RuntimeResumeWhileRunning) {
  const char *Src = "export main;\nmain() { return (1); }\n";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  EXPECT_FALSE(M.rtResume(ResumeChoice::ret(0), {}));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("resumed a machine that is not suspended"),
            std::string::npos);
}

TYPED_TEST(RtMisuseTest, RuntimeResumeOnHaltedMachine) {
  const char *Src = "export main;\nmain() { return (1); }\n";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Halted);
  EXPECT_FALSE(M.rtResume(ResumeChoice::ret(0), {}));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_EQ(M.wrongReason(),
            "run-time system resumed a machine that is not suspended");
  EXPECT_FALSE(M.rtUnwindTop(1));
  EXPECT_EQ(M.wrongReason(),
            "run-time system resumed a machine that is not suspended");
}

TYPED_TEST(RtMisuseTest, RuntimeResumeOnWrongMachineKeepsFirstReason) {
  const char *Src = R"(
export main;
main() {
  bits32 x, y;
  y = x + 1;   /* x never assigned: the machine goes wrong on its own */
  return (y);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Wrong);
  std::string First = M.wrongReason();
  EXPECT_NE(First.find("unbound"), std::string::npos);
  // A confused runtime poking at the wreck must not repaint the diagnosis.
  EXPECT_FALSE(M.rtResume(ResumeChoice::ret(0), {}));
  EXPECT_FALSE(M.rtUnwindTop(1));
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_EQ(M.wrongReason(), First);
}

TYPED_TEST(RtMisuseTest, RuntimeCutToStaleContinuation) {
  // The runtime stages a cut to a continuation whose activation already
  // returned: the value still decodes (its record persists), but the uid
  // check at resume finds no live frame — same dead-continuation wrong
  // state as a program-level cut.
  const char *Src = R"(
export main;
global bits32 saved;
make_k() {
  bits32 t;
  saved = k;
  return (0);
continuation k(t):
  return (99);
}
main() {
  bits32 r;
  r = make_k() also aborts;
  yield(1) also aborts;
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  TypeParam M(*Prog);
  M.start("main");
  ASSERT_EQ(M.run(), MachineStatus::Suspended);
  std::optional<Value> Stale = M.getGlobal("saved");
  ASSERT_TRUE(Stale.has_value());
  CmmRuntime Rt(M);
  ASSERT_TRUE(Rt.setCutToCont(*Stale)); // decodes: staging accepts it
  ASSERT_NE(Rt.findContParam(0), nullptr);
  *Rt.findContParam(0) = b32(5);
  EXPECT_FALSE(Rt.resume()); // ...but the resume transition goes wrong
  EXPECT_EQ(M.status(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("dead continuation"), std::string::npos)
      << "actual reason: " << M.wrongReason();
}

//===----------------------------------------------------------------------===//
// Operand-kind discipline: primitives on laundered values
//===----------------------------------------------------------------------===//

// The static checker guarantees operand shapes at direct call sites, but an
// indirect call can launder a float (or a mis-sized word) into any
// parameter. The machine must go wrong with a clear message instead of
// reinterpreting the representation.

TEST(GoesWrong, PrimAppliedToLaunderedFloat) {
  const char *Src = R"(
export main;
g(bits32 v) {
  bits32 r;
  r = %divu(v, 3);
  return (r);
}
main() {
  bits32 t, r;
  t = g;
  r = t(1.5);
  return (r);
}
)";
  expectWrong(Src, {}, "applied to a floating-point operand");
}

TEST(GoesWrong, PrimAppliedToMisSizedWord) {
  const char *Src = R"(
export main;
g(bits32 v) {
  bits64 w;
  w = %zx64(v);
  return (%lo32(w));
}
main() {
  bits32 t, r;
  t = g;
  r = t(%zx64(9));
  return (r);
}
)";
  expectWrong(Src, {}, "applied to a bits64 operand");
}

TEST(GoesWrong, FloatPrimAppliedToLaunderedWord) {
  const char *Src = R"(
export main;
g(float64 w) {
  float64 s;
  s = %fadd(w, 2.0);
  return (%f2i(s));
}
main() {
  bits32 t, r;
  t = g;
  r = t(5);
  return (r);
}
)";
  expectWrong(Src, {}, "applied to a bit operand");
}

TEST(GoesWrong, MixedFloatAndBitArithmetic) {
  const char *Src = R"(
export main;
g(bits32 v) {
  bits32 r;
  r = v + 1;
  return (r);
}
main() {
  bits32 t, r;
  t = g;
  r = t(2.5);
  return (r);
}
)";
  expectWrong(Src, {}, "mixed floating-point and bit operands");
}

} // namespace
