//===- tests/SchedSoakTest.cpp - M:N scheduler soak (TSan target) ---------===//
//
// Part of cmmex (see DESIGN.md). The long-running scheduler stress: many
// drivers stealing slices from one run queue, cross-thread wakes (a send
// on one driver resuming a receiver whose slice last ran on another),
// virtual timers firing at quiescence, and several schedules sharing one
// engine pool. Slow by design and run under TSan in CI — it exists to
// surface data races in the scheduler core, not to pin new semantics
// (tests/SchedTest.cpp does that); every assertion here is a determinism
// check multi-driver runs must still satisfy.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "engine/Engine.h"
#include "engine/ThreadPool.h"
#include "rts/SchedFormat.h"
#include "sched/Scheduler.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cmm;
using namespace cmm::sched;
using cmm::test::b32;

namespace {

std::string T(uint64_t Tag) { return schedTagLiteral(Tag); }

/// A relay pipeline: n workers chained by bounded channels, each
/// incrementing every token it forwards; main feeds m tokens plus a
/// sentinel into the head and drains the tail. Every channel has exactly
/// one sender and one receiver, so the schedule's observables are
/// independent of driver interleaving. sum = m(m-1)/2 + m*n.
std::string relaySource() {
  return "export main;\n"
         "data chans { bits32[256]; }\n"
         "worker(bits32 cin, bits32 cout) {\n"
         "  bits32 v;\n"
         "loop:\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", cin);\n"
         "  if v == 999999 {\n"
         "    yield(" + T(SchedTagChanSend) + ", cout, v);\n"
         "    return (0);\n"
         "  }\n"
         "  yield(" + T(SchedTagChanSend) + ", cout, v + 1);\n"
         "  goto loop;\n"
         "}\n"
         "main(bits32 n, bits32 m) {\n"
         "  bits32 i, t, v, c, sum;\n"
         "  i = 0;\n"
         "mkchan:\n"
         "  if i > n { goto spawn; }\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 4);\n"
         "  bits32[chans + i * 4] = c;\n"
         "  i = i + 1;\n"
         "  goto mkchan;\n"
         "spawn:\n"
         "  i = 0;\n"
         "spawnloop:\n"
         "  if i == n { goto feed; }\n"
         "  t = yield(" + T(SchedTagSpawn) + ", worker,\n"
         "            bits32[chans + i * 4], bits32[chans + (i + 1) * 4]);\n"
         "  i = i + 1;\n"
         "  goto spawnloop;\n"
         "feed:\n"
         "  i = 0;\n"
         "feedloop:\n"
         "  if i == m { goto fin; }\n"
         "  yield(" + T(SchedTagChanSend) + ", bits32[chans], i);\n"
         "  i = i + 1;\n"
         "  goto feedloop;\n"
         "fin:\n"
         "  yield(" + T(SchedTagChanSend) + ", bits32[chans], 999999);\n"
         "  sum = 0;\n"
         "drain:\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", bits32[chans + n * 4]);\n"
         "  if v == 999999 { goto done; }\n"
         "  sum = sum + v;\n"
         "  goto drain;\n"
         "done:\n"
         "  return (sum);\n"
         "}\n";
}

/// Sleep-heavy fan-in: every worker sleeps on the virtual clock before
/// reporting, so timer wakes race channel wakes across drivers.
std::string timerFanInSource() {
  return "export main;\n"
         "worker(bits32 c, bits32 x) {\n"
         "  yield(" + T(SchedTagSleep) + ", x % 7);\n"
         "  yield(" + T(SchedTagChanSend) + ", c, x);\n"
         "  return (0);\n"
         "}\n"
         "main(bits32 n) {\n"
         "  bits32 c, i, t, v, sum;\n"
         "  c = yield(" + T(SchedTagChanNew) + ", 32);\n"
         "  i = 0;\n"
         "spawnloop:\n"
         "  if i == n { goto drain; }\n"
         "  t = yield(" + T(SchedTagSpawn) + ", worker, c, i);\n"
         "  i = i + 1;\n"
         "  goto spawnloop;\n"
         "drain:\n"
         "  sum = 0;\n"
         "  i = 0;\n"
         "recvloop:\n"
         "  if i == n { goto done; }\n"
         "  v = yield(" + T(SchedTagChanRecv) + ", c);\n"
         "  sum = sum + v;\n"
         "  i = i + 1;\n"
         "  goto recvloop;\n"
         "done:\n"
         "  return (sum);\n"
         "}\n";
}

SchedResult runSched(const IrProgram &Prog, engine::Backend B,
                     SchedOptions Opts, std::vector<Value> Args,
                     Scheduler::SubmitFn Submit = {}) {
  Scheduler S([&Prog, B] { return engine::makeExecutor(B, Prog); }, Opts,
              std::move(Submit));
  return S.run("main", std::move(Args));
}

void expectSameObservables(const SchedResult &A, const SchedResult &B,
                           const char *What) {
  EXPECT_EQ(A.Status, B.Status) << What;
  EXPECT_EQ(A.Results, B.Results) << What;
  EXPECT_EQ(A.ThreadsSpawned, B.ThreadsSpawned) << What;
  EXPECT_EQ(A.ChanSends, B.ChanSends) << What;
  EXPECT_EQ(A.ChanRecvs, B.ChanRecvs) << What;
  EXPECT_EQ(A.StepsTotal, B.StepsTotal) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Work stealing: many drivers, one run queue, rounds of heavy traffic
//===----------------------------------------------------------------------===//

TEST(SchedSoak, RelayPipelineStableAcrossDriversAndRounds) {
  auto Prog = cmm::test::compile({relaySource()});
  ASSERT_TRUE(Prog);
  const uint64_t N = 48, M = 150; // pipeline capacity ~5n, m stays below
  const uint64_t Want = M * (M - 1) / 2 + M * N;

  SchedOptions Single;
  Single.SliceFuel = 256; // force frequent preemption and requeueing
  SchedResult Ref = runSched(*Prog, engine::Backend::Vm, Single,
                             {b32(N), b32(M)});
  ASSERT_EQ(Ref.Status, MachineStatus::Halted) << Ref.WrongReason;
  ASSERT_EQ(Ref.Results, std::vector<Value>{b32(Want)});

  engine::ThreadPool Pool(4);
  auto Submit = [&Pool](std::function<void()> Task) {
    Pool.submit(std::move(Task));
  };
  for (unsigned Drivers : {2u, 4u}) {
    for (int Round = 0; Round < 3; ++Round) {
      SchedOptions O = Single;
      O.Drivers = Drivers;
      SchedResult R =
          runSched(*Prog, engine::Backend::Vm, O, {b32(N), b32(M)}, Submit);
      expectSameObservables(Ref, R, "relay");
    }
  }
}

//===----------------------------------------------------------------------===//
// Cross-thread resume: timer wakes racing channel wakes
//===----------------------------------------------------------------------===//

TEST(SchedSoak, TimerAndChannelWakesRaceCleanly) {
  auto Prog = cmm::test::compile({timerFanInSource()});
  ASSERT_TRUE(Prog);
  const uint64_t N = 400;
  const uint64_t Want = N * (N - 1) / 2;

  engine::ThreadPool Pool(4);
  auto Submit = [&Pool](std::function<void()> Task) {
    Pool.submit(std::move(Task));
  };
  for (int Round = 0; Round < 3; ++Round) {
    SchedOptions O;
    O.Drivers = 4;
    O.SliceFuel = 512;
    SchedResult R = runSched(*Prog, engine::Backend::Threaded, O, {b32(N)},
                             Submit);
    ASSERT_EQ(R.Status, MachineStatus::Halted) << R.WrongReason;
    EXPECT_EQ(R.Results, std::vector<Value>{b32(Want)});
    EXPECT_EQ(R.ThreadsSpawned, N + 1);
    EXPECT_GE(R.TimerWaits, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Shared engine pool: concurrent schedules must not interfere
//===----------------------------------------------------------------------===//

TEST(SchedSoak, ConcurrentScheduledJobsShareOneEnginePool) {
  engine::EngineOptions EO;
  EO.Threads = 4;
  engine::Engine Eng(EO);

  const uint64_t N = 32, M = 100;
  const uint64_t Want = M * (M - 1) / 2 + M * N;
  constexpr int Jobs = 3;

  std::vector<engine::JobResult> Results(Jobs);
  std::vector<std::thread> Hosts;
  for (int I = 0; I < Jobs; ++I) {
    Hosts.emplace_back([&, I] {
      engine::Job J;
      J.Request.Sources = {relaySource()};
      J.B = engine::Backend::Vm;
      J.Args = {b32(N), b32(M)};
      J.Sched.Enabled = true;
      J.Sched.Drivers = 2;
      J.Sched.SliceFuel = 512;
      Results[size_t(I)] = Eng.runJob(J);
    });
  }
  for (std::thread &H : Hosts)
    H.join();
  for (int I = 0; I < Jobs; ++I) {
    ASSERT_EQ(Results[size_t(I)].Status, MachineStatus::Halted)
        << "job " << I << ": " << Results[size_t(I)].WrongReason;
    EXPECT_EQ(Results[size_t(I)].Results, std::vector<Value>{b32(Want)})
        << "job " << I;
    EXPECT_EQ(Results[size_t(I)].SchedThreads, N + 1) << "job " << I;
  }
  EXPECT_EQ(Eng.metrics().gauge("sched.threads_live").value(), 0);
  EXPECT_EQ(Eng.metrics().gauge("sched.runnable").value(), 0);
}
