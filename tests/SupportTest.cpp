//===- tests/SupportTest.cpp - Support and cost-model units ---------------===//
//
// Part of cmmex (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "costmodel/CallSiteModel.h"
#include "costmodel/SetjmpModel.h"
#include "sem/Env.h"
#include "sem/Memory.h"
#include "support/BitVector.h"
#include "support/Bits.h"
#include "support/Interner.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace cmm;

namespace {

//===----------------------------------------------------------------------===//
// Bits
//===----------------------------------------------------------------------===//

TEST(Bits, TruncateAndSignExtend) {
  EXPECT_EQ(truncateToWidth(0x1FF, 8), 0xFFu);
  EXPECT_EQ(truncateToWidth(0xFFFFFFFFFFFFFFFFULL, 64),
            0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(truncateToWidth(0x100, 8), 0u);
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xFFFFFFFF, 32), -1);
  EXPECT_EQ(signExtend(5, 32), 5);
  EXPECT_EQ(signedMin(32), 0x80000000u);
  EXPECT_TRUE(isZeroAtWidth(0x100, 8));
  EXPECT_FALSE(isZeroAtWidth(0x1, 8));
}

//===----------------------------------------------------------------------===//
// BitVector
//===----------------------------------------------------------------------===//

TEST(BitVector, SetResetUnionSubtract) {
  BitVector A(130), B(130);
  A.set(0);
  A.set(64);
  A.set(129);
  EXPECT_TRUE(A.test(64));
  EXPECT_FALSE(A.test(63));
  EXPECT_EQ(A.count(), 3u);

  B.set(64);
  B.set(100);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // no change the second time
  EXPECT_EQ(A.count(), 4u);

  A.subtract(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_TRUE(A.test(0));
  EXPECT_TRUE(A.test(129));
  EXPECT_FALSE(A.test(64));

  std::vector<size_t> Seen;
  A.forEach([&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{0, 129}));

  A.intersectWith(B);
  EXPECT_EQ(A.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Interner
//===----------------------------------------------------------------------===//

TEST(Interner, StableIdentitiesAcrossGrowth) {
  Interner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 1000; ++K)
    Syms.push_back(I.intern("name" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K) {
    EXPECT_EQ(I.intern("name" + std::to_string(K)), Syms[K]);
    EXPECT_EQ(I.spelling(Syms[K]), "name" + std::to_string(K));
  }
  EXPECT_EQ(I.lookup("name42"), Syms[42]);
  EXPECT_FALSE(I.lookup("never-interned").isValid());
  EXPECT_EQ(I.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// Env
//===----------------------------------------------------------------------===//

TEST(Env, BindLookupErase) {
  Interner I;
  Symbol X = I.intern("x"), Y = I.intern("y"), Z = I.intern("z");
  Env E;
  EXPECT_EQ(E.lookup(X), nullptr);
  E.bind(X, Value::bits(32, 1));
  E.bind(Y, Value::bits(32, 2));
  E.bind(X, Value::bits(32, 3)); // rebind
  ASSERT_NE(E.lookup(X), nullptr);
  EXPECT_EQ(E.lookup(X)->Raw, 3u);
  EXPECT_EQ(E.size(), 2u);

  // ρ \ {x, z}: erasing an unbound variable is a no-op.
  E.erase({X, Z});
  EXPECT_EQ(E.lookup(X), nullptr);
  ASSERT_NE(E.lookup(Y), nullptr);
  EXPECT_EQ(E.lookup(Y)->Raw, 2u);
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(MemoryUnit, ZeroFillAndPageBoundaries) {
  Memory M;
  EXPECT_EQ(M.loadBits(0x12345, 4), 0u); // untouched memory reads zero
  // A store straddling a 4 KiB page boundary.
  M.storeBits(4094, 4, 0xAABBCCDD);
  EXPECT_EQ(M.loadBits(4094, 4), 0xAABBCCDDu);
  EXPECT_EQ(M.loadByte(4094), 0xDDu); // little-endian
  EXPECT_EQ(M.loadByte(4097), 0xAAu);
  EXPECT_GE(M.pageCount(), 2u);
}

TEST(MemoryUnit, FloatRoundTrip) {
  Memory M;
  M.storeFloat(64, 8, 3.14159);
  EXPECT_DOUBLE_EQ(M.loadFloat(64, 8), 3.14159);
  M.storeFloat(128, 4, 2.5);
  EXPECT_FLOAT_EQ(static_cast<float>(M.loadFloat(128, 4)), 2.5f);
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

TEST(ValueUnit, EncodingsRoundTrip) {
  Value C = Value::code(3);
  EXPECT_TRUE(C.isCode());
  EXPECT_TRUE(Value::rawIsCode(C.Raw));
  EXPECT_EQ(C.codeIndex(), 3u);

  Value K = Value::cont(17);
  EXPECT_TRUE(K.isCont());
  EXPECT_TRUE(Value::rawIsCont(K.Raw));
  EXPECT_EQ(K.contHandle(), 17u);

  // Data addresses are neither code nor continuations.
  EXPECT_FALSE(Value::rawIsCode(0x10000000)); // the data segment base
  EXPECT_FALSE(Value::rawIsCont(0x10000000));

  Value B = Value::bits(16, 0x12345);
  EXPECT_EQ(B.Raw, 0x2345u); // truncated at construction
  EXPECT_TRUE(Value::bits(32, 7) == Value::bits(32, 7));
  EXPECT_FALSE(Value::bits(32, 7) == Value::bits(16, 7));
}

//===----------------------------------------------------------------------===//
// Cost models
//===----------------------------------------------------------------------===//

TEST(CallSiteModelUnit, PaperClaims) {
  // Figure 3: two words, nothing extra.
  CallSiteCost Std = callSiteCost(ReturnScheme::Standard, 0);
  EXPECT_EQ(Std.Words, 2u);
  EXPECT_EQ(Std.NormalReturnExtra, 0u);

  // Figure 4: "no dynamic overhead in the normal case"; one extra word per
  // alternate continuation; abnormal = branch to a branch (one extra).
  CallSiteCost Bt = callSiteCost(ReturnScheme::BranchTable, 2, 1);
  EXPECT_EQ(Bt.Words, 4u);
  EXPECT_EQ(Bt.NormalReturnExtra, 0u);
  EXPECT_EQ(Bt.AbnormalReturnExtra, 1u);

  // The rejected alternative "would add an overhead at every call".
  CallSiteCost Tb = callSiteCost(ReturnScheme::TestAndBranch, 2, 1);
  EXPECT_GT(Tb.NormalReturnExtra, 0u);
  EXPECT_GT(Tb.AbnormalReturnExtra, Bt.AbnormalReturnExtra);

  ProgramCallCost P =
      programCallCost(ReturnScheme::BranchTable, 100, 2, 1000, 10);
  EXPECT_EQ(P.SpaceWords, 400u);
  EXPECT_EQ(P.ExtraInstructions, 10u); // only the abnormal returns pay
}

TEST(SetjmpModelUnit, PaperNumbers) {
  EXPECT_EQ(SetjmpProfiles[0].JmpBufPointers, 6u);   // Pentium/Linux
  EXPECT_EQ(SetjmpProfiles[1].JmpBufPointers, 19u);  // Sparc/Solaris
  EXPECT_EQ(SetjmpProfiles[2].JmpBufPointers, 84u);  // Alpha/Digital-Unix
  for (const SetjmpProfile &P : SetjmpProfiles) {
    EXPECT_EQ(P.NativeCutterPointers, 2u);
    NonLocalExitCost C = nonLocalExitCost(P, 100, 10);
    // setjmp always saves at least 3x the state of the native cutter.
    EXPECT_GE(C.SetjmpWordsSaved, 3 * C.CutterWordsSaved);
  }
  // Only the SPARC flushes register windows.
  EXPECT_TRUE(SetjmpProfiles[1].FlushesRegisterWindows);
  EXPECT_FALSE(SetjmpProfiles[0].FlushesRegisterWindows);
}

//===----------------------------------------------------------------------===//
// Rng determinism
//===----------------------------------------------------------------------===//

TEST(RngUnit, DeterministicAndBounded) {
  Rng A(42), B(42), C(43);
  bool AllEqual = true, AnyDiffSeed = false;
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next(), Y = B.next(), Z = C.next();
    AllEqual &= X == Y;
    AnyDiffSeed |= X != Z;
  }
  EXPECT_TRUE(AllEqual);
  EXPECT_TRUE(AnyDiffSeed);
  Rng D(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(D.below(10), 10u);
    int64_t R = D.range(-5, 5);
    EXPECT_GE(R, -5);
    EXPECT_LE(R, 5);
  }
}

} // namespace
