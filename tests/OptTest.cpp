//===- tests/OptTest.cpp - Optimizer unit tests ---------------------------===//
//
// Part of cmmex (see DESIGN.md). Experiments around Table 3 and Figure 6:
// standard optimizations driven by the dataflow rules, the extra flow edges
// that make them sound in the presence of exceptions, and the SSA numbering
// of the example procedure.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "opt/PassManager.h"
#include "opt/Ssa.h"

using namespace cmm;
using namespace cmm::test;

namespace {

//===----------------------------------------------------------------------===//
// Constant propagation and dead code
//===----------------------------------------------------------------------===//

TEST(ConstProp, FoldsConstantComputations) {
  const char *Src = R"(
export main;
main() {
  bits32 a, b, c;
  a = 6;
  b = a * 7;
  c = b + 1;
  if c == 43 {
    return (b);
  }
  return (0);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  uint64_t StepsBefore;
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main")[0], b32(42));
    StepsBefore = M.stats().Steps;
  }
  OptReport R = optimizeProgram(*Prog);
  EXPECT_GE(R.ConstProp.ExprsRewritten, 2u);
  EXPECT_GE(R.ConstProp.BranchesResolved, 1u);
  DiagnosticEngine Diags;
  ASSERT_TRUE(validateProgram(*Prog, Diags)) << Diags.str();
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main")[0], b32(42));
    EXPECT_LT(M.stats().Steps, StepsBefore);
  }
}

TEST(ConstProp, DoesNotFoldThroughCallClobberedGlobals) {
  const char *Src = R"(
export main;
global bits32 g;
set_g() { g = 9; return; }
main() {
  bits32 r;
  g = 1;
  set_g();
  r = g + 1;
  return (r);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  Machine M(*Prog);
  // If the optimizer wrongly assumed g==1 survives the call, this is 2.
  EXPECT_EQ(runToHalt(M, "main")[0], b32(10));
}

TEST(ConstProp, JoinOfDifferentConstantsIsNotConstant) {
  const char *Src = R"(
export main;
main(bits32 x) {
  bits32 a;
  if x > 0 {
    a = 1;
  } else {
    a = 2;
  }
  return (a * 10);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(10));
  Machine M2(*Prog);
  EXPECT_EQ(runToHalt(M2, "main", {b32(0)})[0], b32(20));
}

TEST(DeadCode, RemovesDeadAssignsButKeepsFailingExprs) {
  const char *Src = R"(
export main;
main(bits32 x) {
  bits32 dead1, dead2, live;
  dead1 = x * 100;
  dead2 = %divu(x, x);   /* can fail when x == 0: must stay */
  live = x + 1;
  return (live);
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  OptReport R = optimizeProgram(*Prog);
  EXPECT_EQ(R.DeadCode.AssignsRemoved, 1u); // only dead1
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(4)})[0], b32(5));
  }
  {
    // The unspecified failure of %divu(0,0) is preserved.
    Machine M(*Prog);
    M.start("main", {b32(0)});
    EXPECT_EQ(M.run(), MachineStatus::Wrong);
  }
}

//===----------------------------------------------------------------------===//
// The Hennessy scenario: dataflow edges make exceptions safe to optimize
//===----------------------------------------------------------------------===//

/// y is computed before the call, used *only* by the handler continuation.
/// With the `also cuts to` edge in the dataflow, y stays live across the
/// call; without it, dead-code elimination deletes the assignment and the
/// handler reads an unbound variable.
const char *hennessySource() {
  return R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[8]; }

boom() {
  bits32 kv;
  kv = bits32[exn_top];
  exn_top = exn_top - sizeof(kv);
  cut to kv(1, 2);
}

f(bits32 x) {
  bits32 y, t, a, kv;
  y = x * 3;
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = k;
  boom() also cuts to k also aborts;
  exn_top = exn_top - sizeof(kv);
  return (0);
continuation k(t, a):
  return (y + t + a);
}

main(bits32 x) {
  bits32 r;
  exn_top = exn_stack;
  r = f(x);
  return (r);
}
)";
}

TEST(Table3Edges, OptimizerPreservesHandlerLiveValues) {
  auto Prog = compile({hennessySource()});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.WithExceptionalEdges = true;
  optimizeProgram(*Prog, Opts);
  Machine M(*Prog);
  EXPECT_EQ(runToHalt(M, "main", {b32(10)})[0], b32(33)); // 30 + 1 + 2
}

TEST(Table3Edges, AblationDeletesHandlerLiveValues) {
  auto Prog = compile({hennessySource()});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.WithExceptionalEdges = false; // the unsound approximation
  OptReport R = optimizeProgram(*Prog, Opts);
  EXPECT_GE(R.DeadCode.AssignsRemoved, 1u);
  Machine M(*Prog);
  M.start("main", {b32(10)});
  EXPECT_EQ(M.run(), MachineStatus::Wrong);
  EXPECT_NE(M.wrongReason().find("unbound"), std::string::npos)
      << M.wrongReason();
}

//===----------------------------------------------------------------------===//
// Callee-saves placement (Section 4.2)
//===----------------------------------------------------------------------===//

/// y is live across the call on the normal path *and* used by the handler:
/// the classic value that must not go into a callee-saves register.
const char *calleeSavesSource() {
  return R"(
export main;
global bits32 exn_top;
data exn_stack { bits32[8]; }

boom(bits32 x) {
  bits32 kv;
  if x == 7 {
    kv = bits32[exn_top];
    exn_top = exn_top - sizeof(kv);
    cut to kv(1, 2);
  }
  return;
}

f(bits32 x) {
  bits32 y, t, a, kv;
  y = x * 3;
  exn_top = exn_top + sizeof(kv);
  bits32[exn_top] = k;
  boom(x) also cuts to k also aborts;
  exn_top = exn_top - sizeof(kv);
  return (y + 1);
continuation k(t, a):
  return (y + t + a);
}

main(bits32 x) {
  bits32 r;
  exn_top = exn_stack;
  r = f(x);
  return (r);
}
)";
}

TEST(CalleeSaves, SoundPlacementKeepsHandlerValuesInTheFrame) {
  auto Prog = compile({calleeSavesSource()});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.PlaceCalleeSaves = true;
  OptReport R = optimizeProgram(*Prog, Opts);
  EXPECT_GE(R.CalleeSaves.VarsExcludedByCutEdges, 1u);
  for (const auto &P : Prog->Procs)
    EXPECT_EQ(countKilledLiveValues(*P, *Prog), 0u);
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(16)); // normal: 15+1
  }
  {
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(7)})[0], b32(24)); // handler: 21+1+2
  }
}

TEST(CalleeSaves, UnsoundPlacementIsKilledByTheCut) {
  auto Prog = compile({calleeSavesSource()});
  ASSERT_TRUE(Prog);
  OptOptions Opts;
  Opts.PlaceCalleeSaves = true;
  Opts.CalleeSaves.RespectCutEdges = false; // the miscompile
  OptReport R = optimizeProgram(*Prog, Opts);
  EXPECT_GE(R.CalleeSaves.VarsPlaced, 1u);

  unsigned Killed = 0;
  for (const auto &P : Prog->Procs)
    Killed += countKilledLiveValues(*P, *Prog);
  EXPECT_GE(Killed, 1u); // the static checker sees the bug

  {
    // Normal path: callee-saves registers work fine.
    Machine M(*Prog);
    EXPECT_EQ(runToHalt(M, "main", {b32(5)})[0], b32(16));
  }
  {
    // Exceptional path: the cut destroys y; the handler's read goes wrong.
    Machine M(*Prog);
    M.start("main", {b32(7)});
    EXPECT_EQ(M.run(), MachineStatus::Wrong);
    EXPECT_NE(M.wrongReason().find("unbound"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// SSA numbering of the Figure 5 example
//===----------------------------------------------------------------------===//

const char *figure5Source() {
  return R"(
export f;
g() { return (1, 2); }
f(bits32 a) {
  bits32 b, c, d;
  b = a;
  c = a;
  b, c = g() also unwinds to k also aborts;
  c = b + c + a;
  return (c);
continuation k(d):
  return (b + d);
}
)";
}

TEST(Figure6Ssa, NumberingIsSingleAssignment) {
  auto Prog = compile({figure5Source()});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  ASSERT_TRUE(F);
  SsaNumbering Ssa = computeSsa(*F, *Prog);

  // Every (location, version) pair is defined at most once across nodes and
  // φ-functions; no use reads a version that was never defined.
  std::set<std::pair<unsigned, unsigned>> Defined;
  for (size_t Id = 0; Id < F->Nodes.size(); ++Id) {
    for (const auto &[Loc, Ver] : Ssa.Defs[Id])
      EXPECT_TRUE(Defined.insert({Loc, Ver}).second)
          << "duplicate definition of version " << Ver;
    for (const SsaNumbering::Phi &Phi : Ssa.Phis[Id])
      EXPECT_TRUE(Defined.insert({Phi.Loc, Phi.Result}).second);
  }
  for (size_t Id = 0; Id < F->Nodes.size(); ++Id)
    for (const auto &[Loc, Ver] : Ssa.Uses[Id])
      if (Ver != 0) {
        EXPECT_TRUE(Defined.count({Loc, Ver}))
            << "use of undefined version " << Ver << " of "
            << Ssa.Universe.describe(Loc, *Prog->Names);
      }
}

TEST(Figure6Ssa, HandlerSeesPreCallVersionOfB) {
  auto Prog = compile({figure5Source()});
  ASSERT_TRUE(Prog);
  IrProc *F = Prog->findProc("f");
  ASSERT_TRUE(F);
  SsaNumbering Ssa = computeSsa(*F, *Prog);
  std::string Dump = Ssa.print(*F, *Prog->Names);
  EXPECT_FALSE(Dump.empty());

  // Find b's versions: the CopyIn of the call result defines a b version
  // that must differ from the one the handler k uses (k is reached along
  // the unwind edge, before the result CopyIn).
  Symbol B = Prog->Names->lookup("b");
  ASSERT_TRUE(B);
  std::optional<unsigned> BLoc = Ssa.Universe.varIndex(B);
  ASSERT_TRUE(BLoc.has_value());

  unsigned AssignVersion = 0, ResultVersion = 0, HandlerUse = 0;
  for (Node *N : reachableNodes(*F)) {
    if (isa<AssignNode>(N) && cast<AssignNode>(N)->Var == B)
      for (const auto &[Loc, Ver] : Ssa.Defs[N->Id])
        if (Loc == *BLoc)
          AssignVersion = Ver;
    if (const auto *C = dyn_cast<CopyInNode>(N)) {
      bool DefinesB =
          std::find(C->Vars.begin(), C->Vars.end(), B) != C->Vars.end();
      if (DefinesB && C->Vars.size() == 2) // the b, c = g() result CopyIn
        for (const auto &[Loc, Ver] : Ssa.Defs[N->Id])
          if (Loc == *BLoc)
            ResultVersion = Ver;
    }
    if (const auto *E = dyn_cast<CopyOutNode>(N)) {
      // The handler's return (b + d) is the CopyOut using both b and d.
      (void)E;
      bool UsesB = false, UsesD = false;
      for (const auto &[Loc, Ver] : Ssa.Uses[N->Id]) {
        (void)Ver;
        if (Ssa.Universe.describe(Loc, *Prog->Names) == "b")
          UsesB = true;
        if (Ssa.Universe.describe(Loc, *Prog->Names) == "d")
          UsesD = true;
      }
      if (UsesB && UsesD)
        for (const auto &[Loc, Ver] : Ssa.Uses[N->Id])
          if (Loc == *BLoc)
            HandlerUse = Ver;
    }
  }
  ASSERT_NE(AssignVersion, 0u);
  ASSERT_NE(ResultVersion, 0u);
  ASSERT_NE(HandlerUse, 0u);
  EXPECT_NE(AssignVersion, ResultVersion);
  // The handler runs when g unwinds: it must see the pre-call b, not the
  // call's result.
  EXPECT_EQ(HandlerUse, AssignVersion);
}

//===----------------------------------------------------------------------===//
// Optimizing the Figure 1 programs end to end
//===----------------------------------------------------------------------===//

TEST(OptPipeline, Figure1ProgramsSurviveOptimization) {
  const char *Src = R"(
export sp3;
sp3(bits32 n) {
  bits32 s, p;
  s = 1; p = 1;
loop:
  if n == 1 {
    return (s, p);
  } else {
    s = s + n;
    p = p * n;
    n = n - 1;
    goto loop;
  }
}
)";
  auto Prog = compile({Src});
  ASSERT_TRUE(Prog);
  optimizeProgram(*Prog);
  DiagnosticEngine Diags;
  ASSERT_TRUE(validateProgram(*Prog, Diags)) << Diags.str();
  Machine M(*Prog);
  std::vector<Value> R = runToHalt(M, "sp3", {b32(5)});
  EXPECT_EQ(R[0], b32(15));
  EXPECT_EQ(R[1], b32(120));
}

//===----------------------------------------------------------------------===//
// Constant folding operand discipline
//===----------------------------------------------------------------------===//

// foldConstExpr must only fold operand shapes the machine would accept:
// Bits of the width the primitive expects. A float or mixed-width operand
// (reachable dynamically through an indirect call) goes wrong at run time,
// and folding it to a .Raw reinterpretation would silently change that
// behaviour — the cmmdiff oracle treats such a change as a miscompile.
TEST(ConstProp, FoldRefusesUnsoundOperandShapes) {
  Interner Names;
  SourceLoc L;
  auto Int = [&](uint64_t V) -> ExprPtr {
    return std::make_unique<IntLitExpr>(L, V);
  };
  auto Flt = [&](double V) -> ExprPtr {
    return std::make_unique<FloatLitExpr>(L, V);
  };
  auto Prim1 = [&](const char *Name, ExprPtr A) -> ExprPtr {
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(A));
    return std::make_unique<PrimExpr>(L, Names.intern(Name),
                                      std::move(Args));
  };
  auto Prim2 = [&](const char *Name, ExprPtr A, ExprPtr B) -> ExprPtr {
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(A));
    Args.push_back(std::move(B));
    return std::make_unique<PrimExpr>(L, Names.intern(Name),
                                      std::move(Args));
  };
  auto Fold = [&](const ExprPtr &E) { return foldConstExpr(E.get(), Names); };

  // Well-shaped folds still fold.
  EXPECT_EQ(Fold(Prim2("%ltu", Int(5), Int(7))), Value::bits(32, 1));
  EXPECT_EQ(Fold(Prim2("%divu", Prim1("%zx64", Int(10)),
                       Prim1("%zx64", Int(3)))),
            Value::bits(64, 3));
  EXPECT_EQ(Fold(Prim1("%hi32", Prim1("%zx64", Int(1)))),
            Value::bits(32, 0));

  // Mixed widths: bits64 against bits32 must not fold.
  EXPECT_EQ(Fold(Prim2("%ltu", Prim1("%zx64", Int(5)), Int(7))),
            std::nullopt);
  EXPECT_EQ(Fold(Prim2("%divu", Prim1("%zx64", Int(10)), Int(3))),
            std::nullopt);
  EXPECT_EQ(Fold(Prim2("%modu", Int(10), Prim1("%sx64", Int(3)))),
            std::nullopt);
  EXPECT_EQ(Fold(Prim2("%geu", Prim1("%zx64", Int(1)), Int(1))),
            std::nullopt);

  // Wrong width for the conversions.
  EXPECT_EQ(Fold(Prim1("%lo32", Int(5))), std::nullopt);
  EXPECT_EQ(Fold(Prim1("%zx64", Prim1("%zx64", Int(1)))), std::nullopt);

  // Float operands never fold through the unsigned primitives.
  EXPECT_EQ(Fold(Prim2("%divu", Flt(1.5), Int(3))), std::nullopt);

  // Evaluation that could fail is never folded away.
  EXPECT_EQ(Fold(Prim2("%divu", Int(5), Int(0))), std::nullopt);
}

} // namespace
