//===- tests/MiniM3ErrorsTest.cpp - Front-end diagnostics -----------------===//
//
// Part of cmmex (see DESIGN.md). The Mini-Modula-3 compiler's own static
// checks, plus a few richer programs exercising recursion, mutual
// recursion and handler re-raising across all three policies.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/M3Driver.h"

using namespace cmm;
using namespace cmm::test;

namespace {

std::string m3Error(const std::string &Src,
                    ExnPolicy P = ExnPolicy::StackCutting) {
  DiagnosticEngine Diags;
  std::optional<M3Compiled> R = compileMiniM3(Src, P, Diags);
  EXPECT_FALSE(R.has_value()) << "expected a compile error";
  return Diags.str();
}

TEST(M3Errors, UndeclaredVariable) {
  std::string E = m3Error(R"(
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RETURN y;
END Main;
)");
  EXPECT_NE(E.find("undeclared variable"), std::string::npos) << E;
}

TEST(M3Errors, UndeclaredProcedureAndArity) {
  std::string E1 = m3Error(R"(
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RETURN Nope(x);
END Main;
)");
  EXPECT_NE(E1.find("undeclared procedure"), std::string::npos) << E1;

  std::string E2 = m3Error(R"(
PROCEDURE F(a: INTEGER, b: INTEGER): INTEGER =
BEGIN
  RETURN a + b;
END F;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RETURN F(x);
END Main;
)");
  EXPECT_NE(E2.find("wrong number of arguments"), std::string::npos) << E2;
}

TEST(M3Errors, UndeclaredExceptionInRaiseAndHandler) {
  std::string E1 = m3Error(R"(
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RAISE Nope;
END Main;
)");
  EXPECT_NE(E1.find("undeclared exception"), std::string::npos) << E1;

  std::string E2 = m3Error(R"(
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  TRY
    RETURN 1;
  EXCEPT
  | Nope => RETURN 2;
  END;
END Main;
)");
  EXPECT_NE(E2.find("undeclared exception"), std::string::npos) << E2;
}

TEST(M3Errors, ExceptionArgumentArity) {
  std::string E1 = m3Error(R"(
EXCEPTION E;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RAISE E(1);
END Main;
)");
  EXPECT_NE(E1.find("takes no argument"), std::string::npos) << E1;

  std::string E2 = m3Error(R"(
EXCEPTION E(INTEGER);
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RAISE E;
END Main;
)");
  EXPECT_NE(E2.find("requires an argument"), std::string::npos) << E2;

  std::string E3 = m3Error(R"(
EXCEPTION E;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  TRY
    RAISE E;
  EXCEPT
  | E(w) => RETURN w;
  END;
END Main;
)");
  EXPECT_NE(E3.find("carries no value"), std::string::npos) << E3;
}

TEST(M3Errors, MissingMainAndReservedNames) {
  std::string E1 = m3Error(R"(
PROCEDURE NotMain(x: INTEGER): INTEGER =
BEGIN
  RETURN x;
END NotMain;
)");
  EXPECT_NE(E1.find("Main"), std::string::npos) << E1;

  std::string E2 = m3Error(R"(
PROCEDURE Main(x: INTEGER): INTEGER =
VAR m3temp: INTEGER;
BEGIN
  RETURN x;
END Main;
)");
  EXPECT_NE(E2.find("reserved"), std::string::npos) << E2;
}

TEST(M3Errors, ReturnValueInProperProcedure) {
  std::string E = m3Error(R"(
PROCEDURE P() =
BEGIN
  RETURN 5;
END P;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  P();
  RETURN x;
END Main;
)");
  EXPECT_NE(E.find("proper procedure"), std::string::npos) << E;
}

//===----------------------------------------------------------------------===//
// Richer cross-policy programs
//===----------------------------------------------------------------------===//

const ExnPolicy AllPolicies[] = {ExnPolicy::StackCutting,
                                 ExnPolicy::RuntimeUnwinding,
                                 ExnPolicy::NativeUnwinding};

uint64_t runM3Value(const char *Src, ExnPolicy P, uint64_t X) {
  DiagnosticEngine Diags;
  std::unique_ptr<M3Program> Prog = buildM3(Src, P, Diags);
  if (!Prog) {
    ADD_FAILURE() << Diags.str();
    return ~0ull;
  }
  M3RunResult R = runM3(*Prog, X);
  if (!R.Ok) {
    ADD_FAILURE() << exnPolicyName(P) << ": " << R.WrongReason;
    return ~0ull;
  }
  return R.Value;
}

class M3ProgramsTest : public ::testing::TestWithParam<ExnPolicy> {};

TEST_P(M3ProgramsTest, MutualRecursionWithExceptions) {
  const char *Src = R"(
EXCEPTION Odd(INTEGER);

PROCEDURE IsEven(n: INTEGER): INTEGER =
BEGIN
  IF n = 0 THEN RETURN 1; END;
  RETURN IsOdd(n - 1);
END IsEven;

PROCEDURE IsOdd(n: INTEGER): INTEGER =
BEGIN
  IF n = 0 THEN RAISE Odd(n); END;
  RETURN IsEven(n - 1);
END IsOdd;

PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  TRY
    RETURN 100 + IsEven(x);
  EXCEPT
  | Odd(w) => RETURN 200 + w;
  END;
END Main;
)";
  // Even x: IsEven eventually returns 1 -> 101. Odd x: the chain bottoms
  // out in IsOdd(0) and raises -> 200.
  EXPECT_EQ(runM3Value(Src, GetParam(), 6), 101u);
  EXPECT_EQ(runM3Value(Src, GetParam(), 7), 200u);
}

TEST_P(M3ProgramsTest, HandlerReRaisesToOuterScope) {
  const char *Src = R"(
EXCEPTION A(INTEGER);
EXCEPTION B(INTEGER);

PROCEDURE Boom(v: INTEGER) =
BEGIN
  RAISE A(v);
END Boom;

PROCEDURE Middle(v: INTEGER): INTEGER =
BEGIN
  TRY
    Boom(v);
  EXCEPT
  | A(w) => RAISE B(w + 1);   (* translate A into B *)
  END;
  RETURN 0;
END Middle;

PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  TRY
    RETURN Middle(x);
  EXCEPT
  | B(w) => RETURN 500 + w;
  | A(w) => RETURN 900 + w;
  END;
END Main;
)";
  EXPECT_EQ(runM3Value(Src, GetParam(), 3), 504u);
}

TEST_P(M3ProgramsTest, FibonacciSanity) {
  const char *Src = R"(
PROCEDURE Fib(n: INTEGER): INTEGER =
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
PROCEDURE Main(x: INTEGER): INTEGER =
BEGIN
  RETURN Fib(x);
END Main;
)";
  EXPECT_EQ(runM3Value(Src, GetParam(), 10), 55u);
  EXPECT_EQ(runM3Value(Src, GetParam(), 15), 610u);
}

TEST_P(M3ProgramsTest, GlobalsSurviveExceptions) {
  const char *Src = R"(
EXCEPTION E;
VAR count: INTEGER;

PROCEDURE Work(n: INTEGER): INTEGER =
BEGIN
  count := count + 1;
  IF n MOD 3 = 0 THEN RAISE E; END;
  RETURN n;
END Work;

PROCEDURE Main(x: INTEGER): INTEGER =
VAR i: INTEGER;
VAR acc: INTEGER;
BEGIN
  i := 0;
  acc := 0;
  WHILE i < x DO
    TRY
      acc := acc + Work(i);
    EXCEPT
    | E => acc := acc + 1000;
    END;
    i := i + 1;
  END;
  RETURN acc * 100 + count;
END Main;
)";
  // i in 0..5: raises at 0, 3; otherwise adds i. acc = 1000+1+2+1000+4 =
  // 2007... plus i=5 -> 2012? i ranges 0..4 for x=5: 1000,1,2,1000,4 ->
  // 2007; count = 5.
  EXPECT_EQ(runM3Value(Src, GetParam(), 5), 2007u * 100 + 5);
}

INSTANTIATE_TEST_SUITE_P(Policies, M3ProgramsTest,
                         ::testing::ValuesIn(AllPolicies),
                         [](const ::testing::TestParamInfo<ExnPolicy> &I) {
                           switch (I.param) {
                           case ExnPolicy::StackCutting: return "cutting";
                           case ExnPolicy::RuntimeUnwinding:
                             return "unwinding";
                           case ExnPolicy::NativeUnwinding: return "native";
                           }
                           return "unknown";
                         });

} // namespace
