//===- tests/ServiceSoakTest.cpp - multi-client cmmexd soak ---------------===//
//
// Part of cmmex (see DESIGN.md).
//
// The slow service backstop: many concurrent clients hammer one in-process
// server with the cmmload traffic mix (hot cached runs, cold compiles,
// parked yield sessions resumed over the wire) while a rogue thread injects
// protocol violations, quota overruns, and session churn. Labeled `slow`
// and run under ThreadSanitizer in CI — its job is to surface data races
// in the connection/session/tenant machinery, not to measure anything.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/DispatchWorkloads.h"
#include "engine/Engine.h"
#include "svc/Client.h"
#include "svc/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

using namespace cmm;
using namespace cmm::engine;
using cmm::test::b32;
using cmm::test::ServiceHarness;

namespace {

struct SoakTally {
  uint64_t Completed = 0;
  uint64_t Failures = 0;
};

/// One mixed-traffic worker: pipelined hot/cold/yield requests until the
/// deadline, then a full drain (every parked session driven to halt).
void soakWorker(ServiceHarness &H, unsigned Idx,
                std::chrono::steady_clock::time_point Deadline,
                SoakTally &Out) {
  auto C = H.client();
  if (!C) {
    ++Out.Failures;
    return;
  }
  const std::string Sweep =
      sweepWorkloadSource(DispatchTechnique::UnwindRuntime);
  struct Pending {
    bool Yield = false;
    uint32_t Expected = 0;
  };
  std::map<uint64_t, Pending> InFlight;
  uint64_t Seq = uint64_t(Idx) * 1'000'000;
  constexpr unsigned Depth = 4;

  auto issue = [&] {
    svc::RunRequestMsg M;
    M.Tenant = "soak";
    M.Backend = uint8_t(Seq % 3);
    Pending P;
    switch (Seq % 10) {
    case 0: { // cold: fresh constant, forced compile
      uint64_t K = Seq + 13;
      M.Sources = {"export main;\nmain(bits32 n) { return (n + " +
                   std::to_string(K) + "); }\n"};
      M.Args = {b32(1)};
      P.Expected = uint32_t(1 + K);
      break;
    }
    case 1: // yield: park and resume over the wire
      M.Sources = {Sweep};
      M.Entry = "sweep";
      M.Args = {b32(3), b32(1), b32(4)};
      M.Park = true;
      P.Yield = true;
      break;
    default: // hot: cache hit after the first compile
      M.Sources = {"export main;\nmain(bits32 n) { return (n + 1); }\n"};
      M.Args = {b32(41)};
      P.Expected = 42;
      break;
    }
    ++Seq;
    InFlight.emplace(C->sendRun(std::move(M)), P);
  };

  for (;;) {
    bool Open = std::chrono::steady_clock::now() < Deadline;
    while (Open && InFlight.size() < Depth)
      issue();
    if (InFlight.empty()) {
      if (!Open)
        break;
      continue;
    }
    std::optional<svc::Reply> R = C->waitAny();
    if (!R) {
      Out.Failures += InFlight.size();
      break;
    }
    auto It = InFlight.find(R->ReqId);
    if (It == InFlight.end()) {
      ++Out.Failures;
      continue;
    }
    Pending P = It->second;
    InFlight.erase(It);
    if (R->Type != svc::MsgType::RespResult ||
        !R->Result.CompileError.empty()) {
      ++Out.Failures;
      continue;
    }
    MachineStatus St = MachineStatus(R->Result.Status);
    if (St == MachineStatus::Suspended && R->Result.SessionId != 0) {
      if (!P.Yield || !R->Result.DispatchHandled) {
        ++Out.Failures;
        continue;
      }
      svc::ResumeRequestMsg Res;
      Res.Tenant = "soak";
      Res.SessionId = R->Result.SessionId;
      Res.Op = svc::ResumeOp::Dispatch;
      Res.Dispatcher = uint8_t(DispatcherKind::Unwind);
      InFlight.emplace(C->sendResume(std::move(Res)), P);
      continue;
    }
    if (St != MachineStatus::Halted ||
        (!P.Yield && (R->Result.Results.size() != 1 ||
                      R->Result.Results[0] != b32(P.Expected)))) {
      ++Out.Failures;
      continue;
    }
    ++Out.Completed;
  }
}

/// The chaos thread: protocol violations and session churn on their own
/// connections, concurrent with the load. None of it may disturb the
/// well-behaved workers.
void chaosWorker(ServiceHarness &H,
                 std::chrono::steady_clock::time_point Deadline,
                 std::atomic<uint64_t> &Violations) {
  while (std::chrono::steady_clock::now() < Deadline) {
    { // a malformed frame, then vanish
      auto C = H.client();
      if (C) {
        const char Junk[] = "definitely not a cmmx frame";
        C->sendRaw(Junk, sizeof Junk);
        Violations.fetch_add(1);
      }
    }
    { // park a session and abandon it (the TTL reaper's food)
      auto C = H.client();
      if (C) {
        svc::RunRequestMsg M;
        M.Tenant = "chaos";
        M.Sources = {sweepWorkloadSource(DispatchTechnique::UnwindRuntime)};
        M.Entry = "sweep";
        M.Args = {b32(3), b32(1), b32(4)};
        M.Park = true;
        C->run(std::move(M));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(ServiceSoak, MultiClientMixedTrafficStaysConsistent) {
  svc::ServerOptions O;
  O.Threads = 4;
  O.SessionTtlMillis = 100; // let the reaper run against live churn
  ServiceHarness H(std::move(O));
  ASSERT_TRUE(H.ok());

  constexpr unsigned Workers = 8;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2500);
  std::vector<SoakTally> Tallies(Workers);
  std::atomic<uint64_t> Violations{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back(soakWorker, std::ref(H), I, Deadline,
                         std::ref(Tallies[I]));
  std::thread Chaos(chaosWorker, std::ref(H), Deadline, std::ref(Violations));
  for (std::thread &T : Threads)
    T.join();
  Chaos.join();

  uint64_t Completed = 0, Failures = 0;
  for (const SoakTally &T : Tallies) {
    Completed += T.Completed;
    Failures += T.Failures;
  }
  EXPECT_GT(Completed, 100u) << "soak barely ran";
  EXPECT_EQ(Failures, 0u) << "well-behaved clients saw failures";
  EXPECT_GT(Violations.load(), 0u) << "chaos thread never fired";

  // Abandoned chaos sessions must eventually be reaped.
  for (int I = 0; I < 200 && H.server().sessionsOpen() > 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(H.server().sessionsOpen(), 0);

  MetricsRegistry &M = H.server().metrics();
  EXPECT_GE(M.counter("svc.bad_frames").value(), Violations.load());
  // Soak-wide ledger: the bad frames all came from the chaos connection,
  // which never got a run admitted — so the run/jobs invariant still holds.
  EXPECT_EQ(M.counter("svc.requests_run").value(),
            M.counter("engine.jobs").value());
  EXPECT_EQ(M.counter("engine.jobs_wrong").value(), 0u);
}

} // namespace
