//===- tests/RuntimeInterfaceTest.cpp - Table 1 operations ----------------===//
//
// Part of cmmex (see DESIGN.md). The C-- run-time interface, operation by
// operation, against the formal Yield rules it must respect.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "rts/RuntimeInterface.h"

using namespace cmm;
using namespace cmm::test;

namespace {

/// A thread suspended three frames deep: main -> mid -> leaf -> yield.
const char *towers() {
  return R"(
export main;
data d_main { bits32 1; bits32 7; bits32 0; bits32 1; }
data d_mid  { bits32 1; bits32 8; bits32 0; bits32 0; }

leaf(bits32 x) {
  yield(7, x) also aborts;
  return (0);
}
mid(bits32 x) {
  bits32 r;
  r = leaf(x) also unwinds to km also aborts descriptors d_mid;
  return (r);
continuation km:
  return (222);
}
main(bits32 x) {
  bits32 r, a;
  r = mid(x) also unwinds to k0, k1 also aborts descriptors d_main;
  return (r);
continuation k0(a):
  return (1000 + a);
continuation k1:
  return (2000);
}
)";
}

class RtiTest : public ::testing::Test {
protected:
  void SetUp() override {
    Prog = compile({towers()});
    ASSERT_TRUE(Prog);
    M = std::make_unique<Machine>(*Prog);
    M->start("main", {b32(5)});
    ASSERT_EQ(M->run(), MachineStatus::Suspended);
  }

  std::unique_ptr<IrProgram> Prog;
  std::unique_ptr<Machine> M;
};

TEST_F(RtiTest, FirstAndNextWalkTheStack) {
  CmmRuntime Rt(*M);
  Activation A;
  ASSERT_TRUE(Rt.firstActivation(A));
  // The "currently executing" activation is leaf, suspended at the yield.
  EXPECT_EQ(Prog->Names->spelling(Rt.activationProc(A)->Name), "leaf");
  ASSERT_TRUE(Rt.nextActivation(A));
  EXPECT_EQ(Prog->Names->spelling(Rt.activationProc(A)->Name), "mid");
  ASSERT_TRUE(Rt.nextActivation(A));
  EXPECT_EQ(Prog->Names->spelling(Rt.activationProc(A)->Name), "main");
  EXPECT_FALSE(Rt.nextActivation(A)); // bottom of the stack
  EXPECT_FALSE(A.Valid);
}

TEST_F(RtiTest, GetDescriptorReadsCallSiteData) {
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  // leaf's yield call site carries no descriptors.
  EXPECT_FALSE(Rt.getDescriptor(A, 0).has_value());
  Rt.nextActivation(A); // mid, suspended at the leaf(...) call
  std::optional<Value> D = Rt.getDescriptor(A, 0);
  ASSERT_TRUE(D.has_value());
  // The descriptor is the address of d_mid; its first word is the count.
  EXPECT_EQ(M->memory().loadBits(D->Raw, 4), 1u);
  EXPECT_EQ(M->memory().loadBits(D->Raw + 4, 4), 8u); // tag
  // Out-of-range descriptor index.
  EXPECT_FALSE(Rt.getDescriptor(A, 1).has_value());
}

TEST_F(RtiTest, YieldArgumentsAreVisibleInTheArgumentArea) {
  ASSERT_EQ(M->argArea().size(), 2u);
  EXPECT_EQ(M->argArea()[0], b32(7)); // tag
  EXPECT_EQ(M->argArea()[1], b32(5)); // payload (main's x)
}

TEST_F(RtiTest, SetUnwindContChoosesByIndex) {
  // Unwind to main's k1 (index 1, no parameters).
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A);
  Rt.nextActivation(A); // main
  ASSERT_TRUE(Rt.setActivation(A));
  ASSERT_TRUE(Rt.setUnwindCont(1));
  EXPECT_EQ(Rt.findContParam(0), nullptr); // k1 takes nothing
  ASSERT_TRUE(Rt.resume());
  ASSERT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->argArea()[0], b32(2000));
}

TEST_F(RtiTest, FindContParamFeedsTheContinuation) {
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A);
  Rt.nextActivation(A); // main
  ASSERT_TRUE(Rt.setActivation(A));
  ASSERT_TRUE(Rt.setUnwindCont(0)); // k0(a)
  Value *P0 = Rt.findContParam(0);
  ASSERT_NE(P0, nullptr);
  *P0 = b32(77);
  EXPECT_EQ(Rt.findContParam(1), nullptr);
  ASSERT_TRUE(Rt.resume());
  ASSERT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->argArea()[0], b32(1077));
}

TEST_F(RtiTest, SetActivationAloneResumesAtNormalReturn) {
  // "SetActivation(t, a): arranges for thread t to resume execution with
  // activation a" — without SetUnwindCont, that is its normal return
  // point.
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A); // mid
  ASSERT_TRUE(Rt.setActivation(A));
  Value *P0 = Rt.findContParam(0); // mid's normal return binds r
  ASSERT_NE(P0, nullptr);
  *P0 = b32(55);
  ASSERT_TRUE(Rt.resume());
  ASSERT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->argArea()[0], b32(55));
}

TEST_F(RtiTest, MidLevelHandlerShadowsOuterOne) {
  // Resume at mid's km instead of walking to main.
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A); // mid
  ASSERT_TRUE(Rt.setActivation(A));
  ASSERT_TRUE(Rt.setUnwindCont(0));
  ASSERT_TRUE(Rt.resume());
  ASSERT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->argArea()[0], b32(222));
}

TEST_F(RtiTest, ResumeRestoresCalleeSavedEnvironment) {
  // After resumption at k0, main's full environment (here: x) must be back:
  // the unwinding transition restores callee-saves registers.
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  while (Rt.nextActivation(A)) {
  }
  A.Valid = true;
  A.IndexFromTop = Rt.stackDepth() - 1;
  ASSERT_TRUE(Rt.setActivation(A));
  ASSERT_TRUE(Rt.setUnwindCont(0));
  *Rt.findContParam(0) = b32(1);
  ASSERT_TRUE(Rt.resume());
  EXPECT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->argArea()[0], b32(1001));
}

TEST_F(RtiTest, RuntimeMayChangeMemoryWhileSuspended) {
  // The Yield rules allow M' to differ: a garbage collector, for example.
  M->memory().storeBits(0x9000, 4, 12345);
  EXPECT_EQ(M->memory().loadBits(0x9000, 4), 12345u);
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A);
  ASSERT_TRUE(Rt.setActivation(A));
  ASSERT_TRUE(Rt.setUnwindCont(0));
  ASSERT_TRUE(Rt.resume());
  EXPECT_EQ(M->run(), MachineStatus::Halted);
  EXPECT_EQ(M->memory().loadBits(0x9000, 4), 12345u);
}

TEST_F(RtiTest, InterfaceRefusesInvalidStaging) {
  CmmRuntime Rt(*M);
  Activation A;
  Rt.firstActivation(A);
  Rt.nextActivation(A); // mid: one unwind continuation
  ASSERT_TRUE(Rt.setActivation(A));
  EXPECT_FALSE(Rt.setUnwindCont(5)); // out of range
  Activation Bogus;
  EXPECT_FALSE(Rt.setActivation(Bogus)); // invalid handle
  EXPECT_FALSE(Rt.setCutToCont(b32(12345))); // not a continuation
}

} // namespace
