//===- tests/OptSoundnessTest.cpp - Differential property tests -----------===//
//
// Part of cmmex (see DESIGN.md). Property: with the Table 3 exceptional
// edges, the whole optimizer pipeline preserves the observable behaviour of
// randomized programs that raise and handle exceptions via stack cutting.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "costmodel/RandomProgram.h"
#include "opt/PassManager.h"

using namespace cmm;
using namespace cmm::test;

namespace {

struct Observation {
  MachineStatus Status;
  std::vector<Value> Results;

  friend bool operator==(const Observation &A, const Observation &B) {
    return A.Status == B.Status && A.Results == B.Results;
  }
};

Observation observe(const IrProgram &Prog, uint64_t Input) {
  Machine M(Prog);
  M.start("main", {Value::bits(32, Input)});
  Observation O;
  O.Status = M.run(2'000'000);
  if (O.Status == MachineStatus::Halted)
    O.Results = M.argArea();
  return O;
}

class OptSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptSoundnessTest, PipelinePreservesBehaviour) {
  uint64_t Seed = GetParam();
  std::string Src = generateRandomProgram(Seed);

  DiagnosticEngine D1, D2;
  auto Reference = compileProgram({Src}, D1);
  ASSERT_TRUE(Reference) << "seed " << Seed << ":\n" << D1.str() << Src;
  auto Optimized = compileProgram({Src}, D2);
  ASSERT_TRUE(Optimized);

  OptOptions Opts;
  Opts.PlaceCalleeSaves = true;
  optimizeProgram(*Optimized, Opts);
  DiagnosticEngine VD;
  ASSERT_TRUE(validateProgram(*Optimized, VD)) << VD.str();

  for (uint64_t Input : {0, 1, 3, 7, 12, 100}) {
    Observation Ref = observe(*Reference, Input);
    Observation Opt = observe(*Optimized, Input);
    EXPECT_TRUE(Ref == Opt)
        << "seed " << Seed << " input " << Input << ": reference status "
        << static_cast<int>(Ref.Status) << " vs optimized "
        << static_cast<int>(Opt.Status) << "\n"
        << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptSoundnessTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(OptSoundnessAblation, DroppingEdgesMiscompilesSomePrograms) {
  // The converse property: without the exceptional edges, the same pipeline
  // miscompiles a healthy fraction of the same programs. This is the
  // paper's argument for the annotations, reproduced as a measurement.
  unsigned Miscompiled = 0, Total = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    std::string Src = generateRandomProgram(Seed);
    DiagnosticEngine D1, D2;
    auto Reference = compileProgram({Src}, D1);
    ASSERT_TRUE(Reference);
    auto Broken = compileProgram({Src}, D2);
    ASSERT_TRUE(Broken);
    OptOptions Opts;
    Opts.WithExceptionalEdges = false;
    Opts.PlaceCalleeSaves = true;
    optimizeProgram(*Broken, Opts);
    for (uint64_t Input : {0, 1, 3, 7, 12, 100}) {
      ++Total;
      if (!(observe(*Reference, Input) == observe(*Broken, Input)))
        ++Miscompiled;
    }
  }
  EXPECT_GT(Miscompiled, 0u)
      << "the ablation should observably break some programs";
  EXPECT_LT(Miscompiled, Total) << "but not all executions raise";
}

} // namespace
